"""Tests for repro.analysis (lexcheck): each diagnostic code, suppression,
reporters, the strict boot gate, and the metrics export."""

import json

import pytest

from repro.analysis import (
    AnalysisError,
    AnalysisReport,
    AnalysisTarget,
    CATALOG,
    Diagnostic,
    InstanceBinding,
    Severity,
    analyze,
    analyze_strict,
    render_json,
    render_text,
    verify_code,
)
from repro.lexpress import (
    CodeObject,
    Op,
    PartitionConstraint,
    compile_description,
    compile_expr,
    compile_mapping,
    tokenize,
)
from repro.lexpress.parser import Parser
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry


def expr_code(source: str) -> CodeObject:
    parser = Parser(tokenize(source))
    return compile_expr(parser.parse_expr(), source)


def codes(diagnostics) -> set[str]:
    return {d.code for d in diagnostics}


def target_for(source: str, with_instances: bool = True) -> AnalysisTarget:
    mappings = compile_description(source)
    instances = (
        [InstanceBinding(m.name, m) for m in mappings.values()]
        if with_instances
        else []
    )
    return AnalysisTarget(mappings=list(mappings.values()), instances=instances)


# -- pass 1: byte-code verifier ---------------------------------------------------


class TestVerifier:
    def test_clean_compiled_code_verifies(self):
        assert verify_code(expr_code('concat(upper(Name), "x")')) == []

    def test_empty_code_object_is_legal(self):
        assert verify_code(CodeObject("partition:always")) == []

    def test_lx101_stack_underflow(self):
        code = CodeObject("bad")
        code.emit(Op.POP)
        code.emit(Op.PUSH, code.const("x"))
        code.emit(Op.RETURN)
        assert "LX101" in codes(verify_code(code))

    def test_lx102_return_with_extra_values(self):
        code = CodeObject("bad")
        code.emit(Op.PUSH, code.const("a"))
        code.emit(Op.PUSH, code.const("b"))
        code.emit(Op.RETURN)
        assert "LX102" in codes(verify_code(code))

    def test_lx103_fall_off_the_end(self):
        code = CodeObject("bad")
        code.emit(Op.PUSH, code.const("a"))
        assert "LX103" in codes(verify_code(code))

    def test_lx104_jump_out_of_range(self):
        code = CodeObject("bad")
        code.emit(Op.JUMP, 99)
        assert "LX104" in codes(verify_code(code))

    def test_lx105_unreachable_instruction(self):
        code = CodeObject("bad")
        code.emit(Op.PUSH, code.const("a"))
        code.emit(Op.RETURN)
        code.emit(Op.PUSH, code.const("b"))
        code.emit(Op.RETURN)
        assert "LX105" in codes(verify_code(code))

    def test_lx106_unknown_function(self):
        code = CodeObject("bad")
        code.emit(Op.PUSH, code.const("x"))
        code.emit(Op.CALL, (code.const("no_such_fn"), 1))
        code.emit(Op.RETURN)
        assert "LX106" in codes(verify_code(code))

    def test_lx106_bad_constant_index(self):
        code = CodeObject("bad")
        code.emit(Op.PUSH, 42)
        code.emit(Op.RETURN)
        assert "LX106" in codes(verify_code(code))

    def test_lx107_scalar_into_count(self):
        assert "LX107" in codes(verify_code(expr_code("count(upper(Name))")))

    def test_lx107_not_raised_for_attr_ref(self):
        # count(Name) compiles the argument to LOAD_ALL — genuinely a list.
        assert verify_code(expr_code("count(Name)")) == []

    def test_lx108_list_into_scalar_position(self):
        diagnostics = verify_code(expr_code("upper(each Phones => value)"))
        assert "LX108" in codes(diagnostics)

    def test_each_bodies_verified_recursively(self):
        code = expr_code("each Phones => value")
        (body_index,) = [
            ins.arg for ins in code.instructions if ins.op is Op.EACH_APPLY
        ]
        body = code.consts[body_index]
        body.instructions.pop()  # strip the body's RETURN
        assert "LX103" in codes(verify_code(code))

    def test_mutated_rule_caught_through_analyze(self):
        mapping = compile_mapping(
            "mapping m { source a; target b; key Id -> Id; map X = Name; }"
        )
        rule = [r for r in mapping.rules if r.target == "X"][0]
        rule.code.instructions.pop()  # strip RETURN
        report = analyze(AnalysisTarget(mappings=[mapping]))
        assert "LX103" in codes(report.errors)


# -- pass 2: table / match rules --------------------------------------------------


class TestRuleChecks:
    def test_lx201_partial_table(self):
        report = analyze(target_for(
            'mapping m { source a; target b; key Id -> Id;\n'
            '    map X = table Kind { "a" => "1"; }; }'
        ))
        assert "LX201" in codes(report.warnings)

    def test_table_with_default_is_total(self):
        report = analyze(target_for(
            'mapping m { source a; target b; key Id -> Id;\n'
            '    map X = table Kind { "a" => "1"; default => "0"; }; }'
        ))
        assert "LX201" not in codes(report.diagnostics)

    def test_lx202_non_injective_table(self):
        report = analyze(target_for(
            'mapping m { source a; target b; key Id -> Id;\n'
            '    map X = table Kind { "a" => "1"; "b" => "1"; default => "0"; }; }'
        ))
        assert "LX202" in codes(report.warnings)

    def test_lx203_duplicate_table_key(self):
        report = analyze(target_for(
            'mapping m { source a; target b; key Id -> Id;\n'
            '    map X = table Kind { "a" => "1"; "a" => "2"; default => "0"; }; }'
        ))
        assert "LX203" in codes(report.warnings)

    def test_lx204_match_without_wildcard(self):
        report = analyze(target_for(
            'mapping m { source a; target b; key Id -> Id;\n'
            '    map X = match Name { /x/ => "y"; }; }'
        ))
        assert "LX204" in codes(report.infos)

    def test_lx405_literal_hides_alternates(self):
        report = analyze(target_for(
            'mapping m { source a; target b; key Id -> Id;\n'
            '    map X = alt("always", Name); }'
        ))
        assert "LX405" in codes(report.warnings)

    def test_alt_with_literal_last_is_fine(self):
        report = analyze(target_for(
            'mapping m { source a; target b; key Id -> Id;\n'
            '    map X = alt(Name, "fallback"); }'
        ))
        assert "LX405" not in codes(report.diagnostics)


# -- pass 3: partitions -----------------------------------------------------------


TWO_INSTANCES = """
mapping ldap_to_west {{
    source ldap; target dev;
    key devId -> Id;
    partition when {west};
}}
mapping ldap_to_east {{
    source ldap; target dev;
    key devId -> Id;
    partition when {east};
}}
"""


class TestPartitions:
    def test_lx301_overlapping_prefixes(self):
        report = analyze(target_for(TWO_INSTANCES.format(
            west='prefix(Id, "4")', east='prefix(Id, "41")'
        )))
        overlaps = [d for d in report.errors if d.code == "LX301"]
        assert overlaps and "41" in overlaps[0].message

    def test_disjoint_prefixes_are_clean(self):
        report = analyze(target_for(TWO_INSTANCES.format(
            west='prefix(Id, "4")', east='prefix(Id, "5")'
        )))
        assert "LX301" not in codes(report.diagnostics)
        assert "LX302" not in codes(report.diagnostics)

    def test_lx301_trivially_true_constraints(self):
        source = (
            "mapping ldap_to_west { source ldap; target dev; key devId -> Id; }\n"
            "mapping ldap_to_east { source ldap; target dev; key devId -> Id; }"
        )
        report = analyze(target_for(source))
        assert "LX301" in codes(report.errors)

    def test_lx302_coverage_gap(self):
        report = analyze(target_for(
            "mapping ldap_to_dev { source ldap; target dev;\n"
            "    key devId -> Id;\n"
            '    partition when prefix(Id, "41") and not prefix(Id, "415"); }'
        ))
        gaps = [d for d in report.warnings if d.code == "LX302"]
        assert gaps and "415" in gaps[0].message

    def test_lx303_unmapped_partition_dependency(self):
        report = analyze(target_for(
            "mapping ldap_to_dev { source ldap; target dev;\n"
            "    key devId -> Id;\n"
            "    partition when present(Ghost); }"
        ))
        assert "LX303" in codes(report.errors)

    def test_constraints_without_constants_generate_no_probes(self):
        report = analyze(target_for(TWO_INSTANCES.format(
            west="present(Id)", east="present(Id)"
        )))
        # present() probing is inconclusive — not flagged either way.
        assert "LX302" not in codes(report.diagnostics)


# -- pass 4: closure graph --------------------------------------------------------


class TestGraph:
    def test_lx401_non_convergent_cycle(self):
        source = (
            'mapping a_to_b { source a; target b; key Id -> Id;\n'
            '    map X = concat("x", Y); }\n'
            "mapping b_to_a { source b; target a; key Id -> Id;\n"
            "    map Y = X; }"
        )
        report = analyze(target_for(source, with_instances=False))
        assert "LX401" in codes(report.errors)

    def test_lx402_long_stable_cycle(self):
        source = (
            "mapping a_to_b { source a; target b; key Id -> Id; map X = W; }\n"
            "mapping b_to_c { source b; target c; key Id -> Id; map Y = X; }\n"
            "mapping c_to_a { source c; target a; key Id -> Id; map W = Y; }"
        )
        report = analyze(target_for(source, with_instances=False))
        assert "LX402" in codes(report.infos)

    def test_stable_pair_roundtrip_not_reported(self):
        source = (
            "mapping a_to_b { source a; target b; key Id -> Id; map X = Y; }\n"
            "mapping b_to_a { source b; target a; key Id -> Id; map Y = X; }"
        )
        report = analyze(target_for(source, with_instances=False))
        assert "LX402" not in codes(report.diagnostics)

    def test_lx403_conflicting_constant_writers(self):
        source = (
            'mapping p_to_l { source p; target l; key Id -> Id;\n'
            '    map flag = "p"; }\n'
            'mapping q_to_l { source q; target l; key Id -> Id;\n'
            '    map flag = "q"; }'
        )
        report = analyze(target_for(source, with_instances=False))
        conflicts = [d for d in report.warnings if d.code == "LX403"]
        assert conflicts and "flag" in conflicts[0].message

    def test_commuting_writers_not_flagged(self):
        # Both write l.x with the same value for the same record.
        source = (
            "mapping p_to_l { source p; target l; key Id -> Id; map X = Id; }\n"
            "mapping l_to_p { source l; target p; key Id -> Id; }\n"
            "mapping q_to_l { source q; target l; key Id -> Id; map X = Id; }\n"
            "mapping l_to_q { source l; target q; key Id -> Id; }"
        )
        report = analyze(target_for(source, with_instances=False))
        id_conflicts = [
            d for d in report.diagnostics
            if d.code == "LX403" and d.rule and d.rule.lower() == "x"
        ]
        assert id_conflicts == []

    def test_lx404_dead_rule(self):
        source = (
            "mapping dev_to_ldap { source dev; target ldap; key Id -> Id;\n"
            "    map X = Ghost; }\n"
            "mapping ldap_to_dev { source ldap; target dev; key Id -> Id;\n"
            "    map Known = X; }"
        )
        report = analyze(target_for(source, with_instances=False))
        dead = [d for d in report.warnings if d.code == "LX404"]
        assert dead and dead[0].rule == "X"

    def test_lx404_quiet_when_source_schema_unknown(self):
        # Nothing targets 'dev', so lexcheck cannot know what it holds.
        source = (
            "mapping dev_to_ldap { source dev; target ldap; key Id -> Id;\n"
            "    map X = Ghost; }"
        )
        report = analyze(target_for(source, with_instances=False))
        assert "LX404" not in codes(report.diagnostics)

    def test_schema_attributes_make_deps_producible(self):
        source = (
            "mapping dev_to_ldap { source dev; target ldap; key Id -> Id;\n"
            "    map X = Serial; }\n"
            "mapping ldap_to_dev { source ldap; target dev; key Id -> Id; }"
        )
        mappings = list(compile_description(source).values())
        without = analyze(AnalysisTarget(mappings=mappings))
        assert "LX404" in codes(without.diagnostics)
        with_schema = analyze(AnalysisTarget(
            mappings=mappings,
            schema_attributes={"dev": frozenset({"serial"})},
        ))
        assert "LX404" not in codes(with_schema.diagnostics)


# -- suppressions -----------------------------------------------------------------


class TestSuppressions:
    def test_inline_suppression_moves_finding_to_suppressed(self):
        report = analyze(target_for(
            'mapping m { source a; target b; key Id -> Id;\n'
            '    map X = table Kind { "a" => "1"; };'
            '  # lexcheck: ignore[LX201]\n}'
        ))
        assert "LX201" not in codes(report.diagnostics)
        assert "LX201" in codes(report.suppressed)

    def test_suppression_on_line_above(self):
        report = analyze(target_for(
            'mapping m { source a; target b; key Id -> Id;\n'
            '    # lexcheck: ignore[LX201]\n'
            '    map X = table Kind { "a" => "1"; }; }'
        ))
        assert "LX201" in codes(report.suppressed)

    def test_bare_ignore_suppresses_every_code(self):
        report = analyze(target_for(
            'mapping m { source a; target b; key Id -> Id;\n'
            '    map X = table Kind { "a" => "1"; "a" => "2"; };'
            '  # lexcheck: ignore\n}'
        ))
        assert codes(report.suppressed) >= {"LX201", "LX203"}
        assert report.diagnostics == []

    def test_unrelated_code_not_suppressed(self):
        report = analyze(target_for(
            'mapping m { source a; target b; key Id -> Id;\n'
            '    map X = table Kind { "a" => "1"; };'
            '  # lexcheck: ignore[LX999]\n}'
        ))
        assert "LX201" in codes(report.diagnostics)

    def test_shipped_library_is_clean_with_two_suppressions(self):
        from repro.schemas.mappings import standard_mappings

        mappings = standard_mappings()
        report = analyze(AnalysisTarget(mappings=list(mappings.values())))
        assert report.diagnostics == []
        assert codes(report.suppressed) == {"LX403", "LX404"}


# -- reporters and the report object ----------------------------------------------


class TestReporting:
    def test_catalog_covers_every_emitted_code(self):
        assert all(code.startswith("LX") for code in CATALOG)
        assert {s for s, _ in CATALOG.values()} == set(Severity)

    def test_sorted_errors_first(self):
        report = analyze(target_for(
            TWO_INSTANCES.format(west='prefix(Id, "4")', east='prefix(Id, "41")')
            + 'mapping x_to_l { source x; target l; key Id -> Id;\n'
            '    map X = match Name { /x/ => "y"; }; }'
        ))
        ranks = [d.severity.rank for d in report.diagnostics]
        assert ranks == sorted(ranks)
        assert report.diagnostics[0].severity is Severity.ERROR

    def test_render_text_has_location_and_summary(self):
        report = analyze(target_for(
            'mapping m { source a; target b; key Id -> Id;\n'
            '    map X = table Kind { "a" => "1"; }; }'
        ))
        text = render_text(report)
        assert "m:2:13: LX201 warning:" in text
        assert "lexcheck:" in text

    def test_render_json_round_trips(self):
        report = analyze(target_for(
            'mapping m { source a; target b; key Id -> Id;\n'
            '    map X = table Kind { "a" => "1"; }; }'
        ))
        document = json.loads(render_json(report))
        assert document["ok"] is True  # warnings only
        assert document["summary"]["warning"] >= 1
        (finding,) = [
            d for d in document["diagnostics"] if d["code"] == "LX201"
        ]
        assert finding["severity"] == "warning"
        assert finding["mapping"] == "m"
        assert finding["line"] == 2

    def test_analyze_strict_raises_with_report(self):
        target = target_for(
            TWO_INSTANCES.format(west='prefix(Id, "4")', east='prefix(Id, "41")')
        )
        with pytest.raises(AnalysisError) as excinfo:
            analyze_strict(target)
        assert "LX301" in str(excinfo.value)
        assert isinstance(excinfo.value.report, AnalysisReport)

    def test_diagnostic_str_and_location(self):
        diagnostic = Diagnostic(code="LX201", message="boom", mapping="m")
        assert diagnostic.location() == "m"
        assert "LX201 warning: boom" in str(diagnostic)


# -- metrics export ---------------------------------------------------------------


class TestMetrics:
    def test_diagnostics_counter_incremented(self):
        registry = MetricsRegistry()
        analyze(
            target_for(
                TWO_INSTANCES.format(
                    west='prefix(Id, "4")', east='prefix(Id, "41")'
                )
            ),
            registry=registry,
        )
        text = render_prometheus(registry)
        assert 'metacomm_analysis_diagnostics_total{severity="error"} 1' in text


# -- the MetaComm boot gate -------------------------------------------------------


class TestStrictBoot:
    def test_default_configuration_boots_strict(self):
        from repro.core import MetaComm, MetaCommConfig

        with MetaComm(MetaCommConfig(strict_analysis=True)) as system:
            report = system.analyze()
            assert report.ok
            assert report.diagnostics == []

    def test_overlapping_pbxes_refuse_to_boot(self):
        from repro.core import MetaComm, MetaCommConfig, PbxConfig

        with pytest.raises(AnalysisError) as excinfo:
            MetaComm(MetaCommConfig(
                pbxes=(PbxConfig("west", ("4",)), PbxConfig("east", ("41",))),
                strict_analysis=True,
            ))
        assert any(d.code == "LX301" for d in excinfo.value.report.errors)

    def test_non_strict_boot_still_reports_on_demand(self):
        from repro.core import MetaComm, MetaCommConfig, PbxConfig

        with MetaComm(MetaCommConfig(
            pbxes=(PbxConfig("west", ("4",)), PbxConfig("east", ("41",))),
        )) as system:
            report = system.analyze()
            assert any(d.code == "LX301" for d in report.errors)
            with pytest.raises(AnalysisError):
                system.analyze(strict=True)

    def test_strict_boot_exports_metric(self):
        from repro.core import MetaComm, MetaCommConfig

        with MetaComm(MetaCommConfig(strict_analysis=True)) as system:
            assert "metacomm_analysis_diagnostics_total" in system.metrics_text()
