"""Tests for repro.analysis.concur: the LX5xx concurrency lints.

Mirrors tests/test_analysis.py — one test per diagnostic code on a
seeded-bad snippet, suppression scoping, the lock-order graph, CLI
``--fail-on`` interaction, and the shipped-tree-is-clean gate.  Each
snippet is written to a tmp package root and analyzed with
``analyze_concurrency(root)``.
"""

import json

import pytest

from repro.analysis import AnalysisError
from repro.analysis.concur import (
    analyze_concurrency,
    analyze_concurrency_strict,
    build_lock_order_graph,
    build_model,
    lock_order_report,
    static_lock_order,
)
from repro.__main__ import main

HEADER = "import threading\nimport time\n\n\n"

INVERSION = HEADER + """
class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass
"""

SLEEP_UNDER_LOCK = HEADER + """
class Sleeper:
    def __init__(self):
        self._lock = threading.Lock()

    def tick(self):
        with self._lock:
            time.sleep(1.0)
"""

GUARD_SKEW = HEADER + """
class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self):
        with self._lock:
            self._value += 1

    def reset(self):
        with self._lock:
            self._value = 0

    def peek(self):
        return self._value
"""

CALLBACK_UNDER_LOCK = HEADER + """
class Emitter:
    def __init__(self, reentrant=False):
        self._lock = threading.{factory}()
        self._listeners = []

    def subscribe(self, fn):
        with self._lock:
            self._listeners.append(fn)

    def emit(self, value):
        with self._lock:
            for listener in self._listeners:
                listener(value)
"""

LEAKED_THREAD = HEADER + """
class Spawner:
    def start(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        pass
"""

STOPPABLE_THREAD = HEADER + """
class Stoppable:
    def __init__(self):
        self._halt = threading.Event()

    def start(self):
        self._thread = threading.Thread(target=self._run)
        self._thread.start()

    def stop(self):
        self._halt.set()
        self._thread.join(timeout=5)

    def _run(self):
        pass
"""

CONTRACT = HEADER + """
class Contracted:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {{}}

    def put(self, key, value):
        with self._lock:
            self._items[key] = value

    def size(self):
        {doc}return len(self._items)
"""


def analyze_snippet(tmp_path, source, name="snippet.py"):
    (tmp_path / name).write_text(source)
    return analyze_concurrency(tmp_path)


def codes(diagnostics) -> set[str]:
    return {d.code for d in diagnostics}


# -- the five checks ----------------------------------------------------------------


class TestLockOrder:
    def test_lx501_opposite_nesting_orders(self, tmp_path):
        report = analyze_snippet(tmp_path, INVERSION)
        (finding,) = [d for d in report.errors if d.code == "LX501"]
        assert "Pair._a" in finding.message
        assert "Pair._b" in finding.message
        assert finding.related  # the counter-edge site is anchored too

    def test_consistent_order_is_clean(self, tmp_path):
        clean = INVERSION.replace(
            "with self._b:\n            with self._a:",
            "with self._a:\n            with self._b:",
        )
        report = analyze_snippet(tmp_path, clean)
        assert "LX501" not in codes(report.diagnostics)

    def test_call_propagation_contributes_edges(self, tmp_path):
        source = HEADER + (
            "class Deep:\n"
            "    def __init__(self):\n"
            "        self._outer = threading.Lock()\n"
            "        self._inner = threading.Lock()\n"
            "\n"
            "    def _low(self):\n"
            "        with self._inner:\n"
            "            pass\n"
            "\n"
            "    def high(self):\n"
            "        with self._outer:\n"
            "            self._low()\n"
        )
        (tmp_path / "deep.py").write_text(source)
        graph = build_lock_order_graph(build_model(tmp_path))
        assert ("Deep._outer", "Deep._inner") in graph.pairs()
        (edge,) = [e for e in graph.edges if e.held == "Deep._outer"]
        assert edge.origin == "call"

    def test_graph_to_dict_shape(self, tmp_path):
        (tmp_path / "pair.py").write_text(INVERSION)
        graph = build_lock_order_graph(build_model(tmp_path))
        document = graph.to_dict()
        assert set(document["nodes"]) == {"Pair._a", "Pair._b"}
        edge = document["edges"][0]
        assert set(edge) == {"held", "acquired", "site", "method", "origin"}
        assert ":" in edge["site"] and edge["site"].partition(":")[0].endswith(
            "pair.py"
        )


class TestBlocking:
    def test_lx502_sleep_under_lock(self, tmp_path):
        report = analyze_snippet(tmp_path, SLEEP_UNDER_LOCK)
        (finding,) = [d for d in report.warnings if d.code == "LX502"]
        assert "time.sleep" in finding.message
        assert "Sleeper._lock" in finding.message

    def test_lx502_propagates_through_self_calls(self, tmp_path):
        source = HEADER + (
            "class Chained:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "    def _slow(self):\n"
            "        time.sleep(0.5)\n"
            "\n"
            "    def tick(self):\n"
            "        with self._lock:\n"
            "            self._slow()\n"
        )
        report = analyze_snippet(tmp_path, source)
        assert any(
            d.code == "LX502" and "may block" in d.message
            for d in report.warnings
        )

    def test_bounded_own_condition_wait_is_clean(self, tmp_path):
        source = HEADER + (
            "class Waiter:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
            "\n"
            "    def pump(self):\n"
            "        with self._cond:\n"
            "            self._cond.wait(timeout=0.1)\n"
        )
        report = analyze_snippet(tmp_path, source)
        assert "LX502" not in codes(report.diagnostics)

    def test_foreign_lock_across_bounded_wait_is_flagged(self, tmp_path):
        source = HEADER + (
            "class Waiter:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
            "        self._aux = threading.Lock()\n"
            "\n"
            "    def pump(self):\n"
            "        with self._aux:\n"
            "            with self._cond:\n"
            "                self._cond.wait(timeout=0.1)\n"
        )
        report = analyze_snippet(tmp_path, source)
        (finding,) = [d for d in report.warnings if d.code == "LX502"]
        assert "Waiter._aux" in finding.message
        assert "stays held" in finding.message


class TestGuardedFields:
    def test_lx503_majority_guarded_field_with_bare_read(self, tmp_path):
        report = analyze_snippet(tmp_path, GUARD_SKEW)
        (finding,) = [d for d in report.warnings if d.code == "LX503"]
        assert "Box._value" in finding.message
        assert "Box._lock" in finding.message
        assert "peek" in finding.message

    def test_one_diagnostic_per_field_with_related_anchors(self, tmp_path):
        source = GUARD_SKEW + (
            "\n    def peek2(self):\n        return self._value\n"
            "\n    def peek3(self):\n        return self._value\n"
        )
        report = analyze_snippet(tmp_path, source)
        findings = [d for d in report.warnings if d.code == "LX503"]
        assert len(findings) == 1
        assert len(findings[0].related) == 2  # the other bare sites

    def test_init_publication_does_not_count(self, tmp_path):
        # ``self._value = 0`` in __init__ is pre-publication, not a race.
        report = analyze_snippet(tmp_path, GUARD_SKEW)
        (finding,) = [d for d in report.warnings if d.code == "LX503"]
        assert "2/2 write(s)" in finding.message

    def test_contract_docstring_marks_lock_held(self, tmp_path):
        contracted = CONTRACT.format(
            doc='"""Caller holds ``_lock``."""\n        '
        )
        report = analyze_snippet(tmp_path, contracted)
        assert "LX503" not in codes(report.diagnostics)

    def test_without_contract_the_same_read_is_bare(self, tmp_path):
        report = analyze_snippet(tmp_path, CONTRACT.format(doc=""))
        assert "LX503" in codes(report.warnings)

    def test_unlocked_suffix_is_a_naming_contract(self, tmp_path):
        renamed = CONTRACT.format(doc="").replace(
            "def size(self):", "def size_unlocked(self):"
        )
        report = analyze_snippet(tmp_path, renamed)
        assert "LX503" not in codes(report.diagnostics)


class TestCallbacks:
    def test_lx504_listener_loop_under_plain_lock(self, tmp_path):
        report = analyze_snippet(
            tmp_path, CALLBACK_UNDER_LOCK.format(factory="Lock")
        )
        (finding,) = [d for d in report.warnings if d.code == "LX504"]
        assert "Emitter._lock" in finding.message
        assert "listener" in finding.message

    def test_rlock_holders_are_exempt(self, tmp_path):
        report = analyze_snippet(
            tmp_path, CALLBACK_UNDER_LOCK.format(factory="RLock")
        )
        assert "LX504" not in codes(report.diagnostics)

    def test_snapshot_then_invoke_outside_lock_is_clean(self, tmp_path):
        source = HEADER + (
            "class Emitter:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._listeners = []\n"
            "\n"
            "    def emit(self, value):\n"
            "        with self._lock:\n"
            "            listeners = tuple(self._listeners)\n"
            "        for listener in listeners:\n"
            "            listener(value)\n"
        )
        report = analyze_snippet(tmp_path, source)
        assert "LX504" not in codes(report.diagnostics)


class TestThreads:
    def test_lx505_thread_with_no_stop_path(self, tmp_path):
        report = analyze_snippet(tmp_path, LEAKED_THREAD)
        (finding,) = [d for d in report.warnings if d.code == "LX505"]
        assert "daemon thread" in finding.message
        assert "Spawner.start" in finding.message

    def test_stop_event_and_join_satisfy_the_check(self, tmp_path):
        report = analyze_snippet(tmp_path, STOPPABLE_THREAD)
        assert "LX505" not in codes(report.diagnostics)


# -- suppressions -------------------------------------------------------------------


class TestSuppressions:
    def test_inline_suppression_moves_finding_to_suppressed(self, tmp_path):
        suppressed = GUARD_SKEW.replace(
            "return self._value",
            "return self._value  # lexcheck: ignore[LX503]",
        )
        report = analyze_snippet(tmp_path, suppressed)
        assert "LX503" not in codes(report.diagnostics)
        assert "LX503" in codes(report.suppressed)

    def test_suppression_on_any_related_anchor_silences(self, tmp_path):
        # The finding anchors at the *first* bare site; a suppression on a
        # later (related) site must still silence it.
        source = GUARD_SKEW + (
            "\n    def peek2(self):\n"
            "        # lexcheck: ignore[LX503]\n"
            "        return self._value\n"
        )
        report = analyze_snippet(tmp_path, source)
        assert "LX503" in codes(report.suppressed)

    def test_unrelated_code_not_suppressed(self, tmp_path):
        suppressed = GUARD_SKEW.replace(
            "return self._value",
            "return self._value  # lexcheck: ignore[LX999]",
        )
        report = analyze_snippet(tmp_path, suppressed)
        assert "LX503" in codes(report.diagnostics)


# -- strictness and metrics ---------------------------------------------------------


class TestStrict:
    def test_strict_raises_on_inversion(self, tmp_path):
        (tmp_path / "pair.py").write_text(INVERSION)
        with pytest.raises(AnalysisError) as excinfo:
            analyze_concurrency_strict(tmp_path)
        assert any(d.code == "LX501" for d in excinfo.value.report.errors)

    def test_warnings_do_not_trip_strict(self, tmp_path):
        (tmp_path / "box.py").write_text(GUARD_SKEW)
        report = analyze_concurrency_strict(tmp_path)
        assert "LX503" in codes(report.warnings)

    def test_strict_boot_gate_refuses_inverted_runtime(self, tmp_path):
        from repro.core import MetaComm, MetaCommConfig

        # The shipped tree is clean, so the gate passes on the default
        # root and the system constructs.
        with MetaComm(MetaCommConfig(strict_concurrency=True)) as system:
            assert system.consistent()

    def test_registry_counts_findings(self, tmp_path):
        from repro.obs.export import render_prometheus
        from repro.obs.metrics import MetricsRegistry

        (tmp_path / "box.py").write_text(GUARD_SKEW)
        registry = MetricsRegistry()
        analyze_concurrency(tmp_path, registry=registry)
        text = render_prometheus(registry)
        assert (
            'metacomm_concurrency_diagnostics_total{severity="warning"} 1'
            in text
        )


# -- the shipped tree ---------------------------------------------------------------


class TestShippedTree:
    def test_runtime_is_clean_with_justified_suppressions(self):
        report = analyze_concurrency()
        assert report.diagnostics == []
        # Every suppression in the runtime is a documented benign race.
        assert codes(report.suppressed) == {"LX503"}

    def test_static_order_includes_the_metric_edge(self):
        pairs = static_lock_order()
        assert ("ShardedUpdateQueue._cond", "Metric._lock") in pairs

    def test_lock_order_report_returns_graph(self):
        report, graph = lock_order_report()
        assert report.ok
        assert "ShardedUpdateQueue._cond" in graph.nodes
        assert "Backend._lock" in graph.nodes


# -- the CLI ------------------------------------------------------------------------


class TestCli:
    def test_check_concurrency_text_mode(self, capsys):
        assert main(["check", "--concurrency"]) == 0
        out = capsys.readouterr().out
        assert "lock-order graph:" in out
        assert "ShardedUpdateQueue._cond -> Metric._lock" in out

    def test_check_concurrency_json_has_lock_order(self, capsys):
        assert main(["check", "--concurrency", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["diagnostics"] == []
        pairs = {
            (e["held"], e["acquired"])
            for e in document["lock_order"]["edges"]
        }
        assert ("ShardedUpdateQueue._cond", "Metric._lock") in pairs

    def test_fail_on_warning_trips_on_lx503(self, tmp_path, capsys):
        (tmp_path / "box.py").write_text(GUARD_SKEW)
        root = str(tmp_path)
        assert main(["check", "--concurrency", root]) == 0
        assert main(
            ["check", "--concurrency", "--fail-on=warning", root]
        ) == 1
        capsys.readouterr()

    def test_errors_fail_regardless_of_fail_on(self, tmp_path, capsys):
        (tmp_path / "pair.py").write_text(INVERSION)
        assert main(["check", "--concurrency", str(tmp_path)]) == 1
        capsys.readouterr()

    def test_shipped_tree_passes_fail_on_warning(self, capsys):
        assert main(["check", "--concurrency", "--fail-on=warning"]) == 0
        capsys.readouterr()
