"""Tests for the ``python -m repro`` command-line entry point."""

from repro.__main__ import main


class TestCli:
    def test_default_is_demo(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "consistent: True" in out
        assert "station" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "MB-000001" in out

    def test_tree_emits_figure2_ldif(self, capsys):
        assert main(["tree"]) == 0
        out = capsys.readouterr().out
        for dn in (
            "cn=John Doe,o=Marketing,o=Lucent",
            "cn=Pat Smith,o=Accounting,o=Lucent",
            "cn=Tim Dickens,o=R&D,o=Lucent",
            "cn=Jill Lu,o=DEN Group,o=Lucent",
        ):
            assert f"dn: {dn}" in out

    def test_mappings_shows_source_and_bytecode(self, capsys):
        assert main(["mappings"]) == 0
        out = capsys.readouterr().out
        assert "mapping pbx_to_ldap" in out
        assert "MATCH_RE" in out  # the cn rule's compiled pattern match

    def test_stats_emits_prometheus_text_and_traces(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        # Every line is valid Prometheus text: a comment or a sample.
        for line in out.splitlines():
            assert line.startswith("#") or line[0].isalpha()
        assert "(update): ltap.trigger=" in out
        assert "(ddu): ddu.translate=" in out
        assert "metacomm_queue_depth 0" in out
        assert 'metacomm_um_fanout_total{device="definity"} 2' in out
        assert "lexpress_instructions_total" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        assert "--benchmark-only" in capsys.readouterr().out

    def test_unknown_command_prints_usage(self, capsys):
        assert main(["bogus"]) == 2
        assert "Commands" in capsys.readouterr().out
