"""Tests for the ``python -m repro`` command-line entry point."""

import json

import pytest

from repro.__main__ import main

# A deliberately broken configuration: overlapping partitions (LX301),
# a partial table (LX201), and a write-write conflict (LX403).
BAD_DESCRIPTION = """
mapping ldap_to_west {
    source ldap;
    target dev;
    key devId -> Id;
    map Kind = table userKind { "emp" => "1"; };
    map Owner = "west";
    partition when prefix(Id, "4");
}
mapping ldap_to_east {
    source ldap;
    target dev;
    key devId -> Id;
    map Owner = "east";
    partition when prefix(Id, "41");
}
"""


class TestCli:
    def test_default_is_demo(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "consistent: True" in out
        assert "station" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "MB-000001" in out

    def test_tree_emits_figure2_ldif(self, capsys):
        assert main(["tree"]) == 0
        out = capsys.readouterr().out
        for dn in (
            "cn=John Doe,o=Marketing,o=Lucent",
            "cn=Pat Smith,o=Accounting,o=Lucent",
            "cn=Tim Dickens,o=R&D,o=Lucent",
            "cn=Jill Lu,o=DEN Group,o=Lucent",
        ):
            assert f"dn: {dn}" in out

    def test_mappings_shows_source_and_bytecode(self, capsys):
        assert main(["mappings"]) == 0
        out = capsys.readouterr().out
        assert "mapping pbx_to_ldap" in out
        assert "MATCH_RE" in out  # the cn rule's compiled pattern match

    def test_stats_emits_prometheus_text_and_traces(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        # Every line is valid Prometheus text: a comment or a sample.
        for line in out.splitlines():
            assert line.startswith("#") or line[0].isalpha()
        assert "(update): ltap.trigger=" in out
        assert "(ddu): ddu.translate=" in out
        assert "metacomm_queue_depth 0" in out
        assert 'metacomm_um_fanout_total{device="definity"} 2' in out
        assert "lexpress_instructions_total" in out

    def test_stats_closes_open_traces_before_dumping(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        trace_lines = [
            line for line in out.splitlines() if line.startswith("# trace:")
        ]
        assert trace_lines
        # The flush closed every trace: no dangling "[open]" markers.
        assert all(line.endswith("us]") for line in trace_lines)
        assert not any("[open]" in line for line in trace_lines)

    def test_stats_lexpress_compiled_adds_cache_section(self, capsys):
        assert main(["stats", "--lexpress=compiled"]) == 0
        out = capsys.readouterr().out
        cache_lines = [
            line for line in out.splitlines()
            if line.startswith("# lexpress compiled rule cache")
        ]
        assert len(cache_lines) == 1
        assert "compiles=" in cache_lines[0]
        # The output stays valid Prometheus text end to end.
        for line in out.splitlines():
            assert line.startswith("#") or line[0].isalpha()

    def test_stats_default_mode_has_no_cache_section(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "lexpress compiled rule cache" not in out

    def test_stats_bad_lexpress_mode_is_exit_2(self, capsys):
        assert main(["stats", "--lexpress=bogus"]) == 2
        assert "interpret, compiled, verify" in capsys.readouterr().err

    def test_stats_unknown_option_is_exit_2(self, capsys):
        assert main(["stats", "--bogus"]) == 2
        capsys.readouterr()

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        assert "--benchmark-only" in capsys.readouterr().out

    def test_unknown_command_prints_usage(self, capsys):
        assert main(["bogus"]) == 2
        assert "Commands" in capsys.readouterr().out


class TestMonitorCommand:
    def test_one_shot_dashboard(self, capsys):
        assert main(["monitor"]) == 0
        out = capsys.readouterr().out
        assert "queue: depth=0" in out
        assert "definity" in out and "messaging" in out
        assert "healthy" in out
        assert "[ok]" in out
        assert "alerts: none" in out
        assert "journal:" in out

    def test_json_snapshot(self, capsys):
        assert main(["monitor", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["queue"]["depth"] == 0
        assert snapshot["audit"]["ok"] is True
        assert snapshot["alerts"] == []
        assert snapshot["devices"]["definity"]["state"] == "healthy"
        # The demo workload: one LDAP add serial + one DDU serial.
        assert snapshot["queue"]["last_serial"] == 2

    def test_lanes_text_section(self, capsys):
        assert main(["monitor", "--lanes=3"]) == 0
        out = capsys.readouterr().out
        assert "queue: depth=0" in out
        for label in ("0", "1", "2", "serial"):
            assert f"lane {label}" in out
        # The single-lane dashboard stays untouched: no lane section.
        assert main(["monitor"]) == 0
        assert "lane serial" not in capsys.readouterr().out

    def test_lanes_json_snapshot(self, capsys):
        assert main(["monitor", "--lanes=3", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        lanes = snapshot["queue"]["lanes"]
        assert [row["lane"] for row in lanes] == ["0", "1", "2", "serial"]
        assert all(row["depth"] == 0 for row in lanes)
        # The demo workload: one LDAP add (laned) + one DDU (serial).
        assert snapshot["queue"]["last_serial"] == 2
        serial_row = lanes[-1]
        assert serial_row["last_serial"] == 2

    def test_watch_cycles(self, capsys):
        assert main(["monitor", "--watch", "--interval=0.01",
                     "--cycles=2"]) == 0
        out = capsys.readouterr().out
        assert out.count("queue: depth=") == 2

    def test_links_text_section(self, capsys):
        assert main(["monitor", "--links"]) == 0
        out = capsys.readouterr().out
        assert "links:" in out
        for device in ("definity", "messaging"):
            assert f"  {device}" in out
        assert "window=0/4" in out
        assert "batches[" in out
        assert "deferred=0" in out and "rejected=0" in out
        # Without --links the dashboard has no link section.
        assert main(["monitor"]) == 0
        assert "links:" not in capsys.readouterr().out

    def test_links_json_snapshot(self, capsys):
        assert main(["monitor", "--links", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        links = {row["device"]: row for row in snapshot["links"]}
        assert set(links) == {"definity", "messaging"}
        for row in links.values():
            assert row["window"] == 4
            assert row["pending"] == 0 and row["inflight"] == 0
            assert row["completed"] == row["submitted"]
            assert row["deferred"] == 0 and row["rejected"] == 0
            assert row["flushes"] >= 1
            assert sum(row["batch_sizes"].values()) == row["flushes"]
        # Without --links the snapshot carries an explicit null.
        assert main(["monitor", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["links"] is None

    def test_unknown_option_is_exit_2(self, capsys):
        assert main(["monitor", "--bogus"]) == 2
        capsys.readouterr()


class TestEventsCommand:
    def test_text_stream_shows_the_update_journey(self, capsys):
        assert main(["events"]) == 0
        out = capsys.readouterr().out
        for kind in (
            "update.accepted",
            "update.planned",
            "device.commit",
            "supplemental.write",
            "ddu.received",
            "audit.cycle",
        ):
            assert kind in out
        # Events carry their trace correlation inline.
        assert "[trace-" in out

    def test_json_output_is_jsonl(self, capsys):
        assert main(["events", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert all("kind" in e and "seq" in e for e in events)
        assert events[0]["kind"] == "update.accepted"

    def test_limit(self, capsys):
        assert main(["events", "--limit=3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert lines[-1].split()[1] == "audit.cycle"

    def test_follow_streams_in_order(self, capsys):
        assert main(["events", "--follow"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        seqs = [int(line.split()[0].lstrip("#")) for line in lines]
        assert seqs == sorted(seqs)
        assert any("device.commit" in line for line in lines)

    def test_unknown_option_is_exit_2(self, capsys):
        assert main(["events", "--bogus"]) == 2
        capsys.readouterr()


class TestCheckCommand:
    @pytest.fixture
    def bad_file(self, tmp_path):
        path = tmp_path / "bad.lex"
        path.write_text(BAD_DESCRIPTION)
        return str(path)

    def test_default_configuration_is_clean(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out
        assert "2 suppressed" in out

    def test_show_suppressed_lists_the_shipped_waivers(self, capsys):
        assert main(["check", "--show-suppressed"]) == 0
        out = capsys.readouterr().out
        assert "LX403" in out and "LX404" in out
        assert "[suppressed]" in out

    def test_bad_fixture_fails_with_diagnostics(self, bad_file, capsys):
        assert main(["check", bad_file]) == 1
        out = capsys.readouterr().out
        assert "LX301" in out  # overlapping partitions
        assert "LX201" in out  # partial table
        assert "LX403" in out  # write-write conflict on Owner
        assert "error" in out

    def test_bad_fixture_json_is_parseable(self, bad_file, capsys):
        assert main(["check", "--json", bad_file]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        found = {d["code"] for d in document["diagnostics"]}
        assert {"LX301", "LX201", "LX403"} <= found

    def test_fail_on_warning_promotes_warnings(self, tmp_path, capsys):
        path = tmp_path / "warn.lex"
        path.write_text(
            "mapping m { source a; target b; key Id -> Id;\n"
            '    map X = table Kind { "a" => "1"; }; }'
        )
        assert main(["check", str(path)]) == 0  # warning only
        capsys.readouterr()
        assert main(["check", "--fail-on=warning", str(path)]) == 1

    def test_unparseable_file_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "broken.lex"
        path.write_text("mapping { this is not lexpress")
        assert main(["check", str(path)]) == 2
        assert "broken.lex" in capsys.readouterr().err

    def test_missing_file_is_exit_2(self, capsys):
        assert main(["check", "/no/such/file.lex"]) == 2
        capsys.readouterr()

    def test_bad_option_is_exit_2(self, capsys):
        assert main(["check", "--fail-on=bogus"]) == 2
        capsys.readouterr()

    def test_disasm_appends_optimized_bytecode(self, capsys):
        assert main(["check", "--disasm"]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out
        assert "# --- pbx_to_ldap.cn (optimized) ---" in out
        assert "MATCH_RE" in out and "RETURN" in out

    def test_disasm_covers_file_configurations(self, bad_file, capsys):
        assert main(["check", "--disasm", bad_file]) == 1
        out = capsys.readouterr().out
        assert "# --- ldap_to_west.Kind (optimized) ---" in out
        assert "TABLE_CONST" in out
