"""Unit tests for the filter layer: protocol converters + mappers in
isolation (paper section 4.1)."""

import pytest

from repro.core.filters.base import FilterError
from repro.core.filters.device_filter import UM_AGENT, DeviceFilter
from repro.core.filters.ldap_filter import LdapFilter
from repro.devices import DefinityPbx
from repro.ldap import LdapConnection, LdapServer
from repro.lexpress import (
    TargetAction,
    TargetUpdate,
        UpdateOp,
    compile_mapping,
)
from repro.ltap import LtapGateway

PBX_TO_LDAP = compile_mapping(
    """
    mapping pbx_to_ldap {
        source pbx;
        target ldap;
        key Extension -> definityExtension;
        map cn = Name;
        map lastUpdater = "pbx";
    }
    """
)


@pytest.fixture
def pbx():
    return DefinityPbx("pbx-t", ("4",))


@pytest.fixture
def device_filter(pbx):
    return DeviceFilter(pbx, schema="pbx")


def tu(action, key, attrs=None, changed=None, removed=(), conditional=False,
       old_key=None, old_attrs=None):
    return TargetUpdate(
        action=action,
        target="pbx-t",
        key=key,
        old_key=old_key or key,
        key_attribute="Extension",
        attributes=attrs or {},
        old_attributes=old_attrs or {},
        changed=changed or {},
        removed=removed,
        conditional=conditional,
    )


class TestDeviceFilterApply:
    def test_add(self, device_filter, pbx):
        result = device_filter.apply(
            tu(TargetAction.ADD, "4100", {"Extension": ["4100"], "Name": ["A, B"]})
        )
        assert result.applied
        assert pbx.station("4100")["Name"] == "A, B"

    def test_add_drops_unknown_and_generated_fields(self, device_filter, pbx):
        device_filter.apply(
            tu(
                TargetAction.ADD,
                "4100",
                {"Extension": ["4100"], "NotAField": ["x"], "Name": ["A"]},
            )
        )
        assert "NotAField" not in pbx.station("4100")

    def test_conditional_add_becomes_modify(self, device_filter, pbx):
        pbx.add_station("4100", Name="Old")
        result = device_filter.apply(
            tu(
                TargetAction.ADD,
                "4100",
                {"Extension": ["4100"], "Name": ["New"]},
                conditional=True,
            )
        )
        assert result.recovered
        assert pbx.station("4100")["Name"] == "New"

    def test_modify(self, device_filter, pbx):
        pbx.add_station("4100", Room="1A")
        result = device_filter.apply(
            tu(TargetAction.MODIFY, "4100", changed={"Room": ["2B"]})
        )
        assert result.applied
        assert pbx.station("4100")["Room"] == "2B"

    def test_modify_removed_fields(self, device_filter, pbx):
        pbx.add_station("4100", Room="1A")
        device_filter.apply(
            tu(TargetAction.MODIFY, "4100", removed=("Room",))
        )
        assert "Room" not in pbx.station("4100")

    def test_modify_missing_raises_unless_conditional(self, device_filter):
        with pytest.raises(FilterError):
            device_filter.apply(
                tu(TargetAction.MODIFY, "4999", changed={"Room": ["2B"]})
            )

    def test_conditional_modify_falls_back_to_add(self, device_filter, pbx):
        result = device_filter.apply(
            tu(
                TargetAction.MODIFY,
                "4100",
                attrs={"Extension": ["4100"], "Name": ["A"]},
                changed={"Name": ["A"]},
                conditional=True,
            )
        )
        assert result.recovered
        assert pbx.contains("4100")

    def test_modify_rekeys(self, device_filter, pbx):
        pbx.add_station("4100", Name="Mover")
        device_filter.apply(
            tu(
                TargetAction.MODIFY,
                "4200",
                old_key="4100",
                changed={},
            )
        )
        assert pbx.contains("4200")
        assert not pbx.contains("4100")

    def test_delete(self, device_filter, pbx):
        pbx.add_station("4100")
        result = device_filter.apply(tu(TargetAction.DELETE, "4100"))
        assert result.applied
        assert not pbx.contains("4100")

    def test_conditional_delete_tolerates_missing(self, device_filter):
        result = device_filter.apply(
            tu(TargetAction.DELETE, "4999", conditional=True)
        )
        assert not result.applied
        assert result.recovered

    def test_skip_is_noop(self, device_filter, pbx):
        result = device_filter.apply(tu(TargetAction.SKIP, "4100"))
        assert not result.applied
        assert pbx.size() == 0

    def test_statistics_track_outcomes(self, device_filter, pbx):
        device_filter.apply(
            tu(TargetAction.ADD, "4100", {"Extension": ["4100"]})
        )
        device_filter.apply(
            tu(TargetAction.DELETE, "4999", conditional=True)
        )
        with pytest.raises(FilterError):
            device_filter.apply(tu(TargetAction.DELETE, "4888"))
        stats = device_filter.statistics
        assert stats["applied"] == 1
        assert stats["conditional"] == 1
        assert stats["recovered"] == 1
        assert stats["failed"] == 1


class TestDeviceFilterNotifications:
    def test_ddu_descriptor_shape(self, device_filter, pbx):
        received = []
        device_filter.on_ddu(lambda f, d: received.append(d))
        pbx.add_station("4100", Name="A, B", agent="craft")
        (descriptor,) = received
        assert descriptor.op is UpdateOp.ADD
        assert descriptor.source == "pbx"
        assert descriptor.origin == "pbx-t"
        assert descriptor.get_new("Name") == ["A, B"]
        assert "name" in descriptor.explicit

    def test_um_writes_not_reported_as_ddus(self, device_filter, pbx):
        received = []
        device_filter.on_ddu(lambda f, d: received.append(d))
        pbx.add_station("4100", agent=UM_AGENT)
        assert received == []

    def test_modify_descriptor_explicit_only_changed(self, device_filter, pbx):
        pbx.add_station("4100", Name="A", Room="1")
        received = []
        device_filter.on_ddu(lambda f, d: received.append(d))
        pbx.change_station("4100", Room="2", agent="craft")
        (descriptor,) = received
        assert descriptor.op is UpdateOp.MODIFY
        assert descriptor.explicit == {"room"}

    def test_fetch_and_dump(self, device_filter, pbx):
        pbx.add_station("4100", Name="A")
        assert device_filter.fetch("4100")["Name"] == ["A"]
        assert device_filter.fetch("4999") is None
        assert len(device_filter.dump()) == 1


class TestDeviceFilterCompensate:
    def test_compensate_add(self, device_filter, pbx):
        update = tu(TargetAction.ADD, "4100", {"Extension": ["4100"]})
        device_filter.apply(update)
        device_filter.compensate(update, before=None)
        assert not pbx.contains("4100")

    def test_compensate_delete(self, device_filter, pbx):
        pbx.add_station("4100", Name="A")
        before = device_filter.fetch("4100")
        update = tu(TargetAction.DELETE, "4100")
        device_filter.apply(update)
        device_filter.compensate(update, before=before)
        assert pbx.station("4100")["Name"] == "A"

    def test_compensate_modify_restores_and_removes(self, device_filter, pbx):
        pbx.add_station("4100", Name="A", Room="1A")
        before = device_filter.fetch("4100")
        update = tu(
            TargetAction.MODIFY,
            "4100",
            changed={"Name": ["B"], "Building": ["X"]},
            removed=("Room",),
        )
        device_filter.apply(update)
        device_filter.compensate(update, before=before)
        station = pbx.station("4100")
        assert station["Name"] == "A"
        assert station["Room"] == "1A"
        assert "Building" not in station


class TestLdapFilterUnit:
    @pytest.fixture
    def stack(self):
        server = LdapServer(["o=L"])
        conn = LdapConnection(server)
        conn.add("o=L", {"objectClass": "organization", "o": "L"})
        gateway = LtapGateway(server)
        ldap_filter = LdapFilter(gateway, people_base="o=L")
        return server, gateway, ldap_filter

    def _add_update(self, key, cn=None):
        attrs = {"definityExtension": [key]}
        if cn:
            attrs["cn"] = [cn]
        return TargetUpdate(
            action=TargetAction.ADD,
            target="ldap",
            key=key,
            old_key=None,
            key_attribute="definityExtension",
            attributes=attrs,
        )

    def test_add_creates_schema_complete_person(self, stack):
        server, _gateway, ldap_filter = stack
        ldap_filter.apply(self._add_update("4100", cn="A B"))
        entry = server.get("cn=A B,o=L")
        assert "inetOrgPerson" in entry.object_classes
        assert entry.first("sn") == "B"

    def test_add_without_cn_uses_key(self, stack):
        server, _gateway, ldap_filter = stack
        ldap_filter.apply(self._add_update("4100"))
        assert server.get("cn=4100,o=L").first("definityExtension") == "4100"

    def test_add_merges_into_existing_by_key(self, stack):
        server, _gateway, ldap_filter = stack
        ldap_filter.apply(self._add_update("4100", cn="A B"))
        update = self._add_update("4100", cn="A B")
        update.attributes["definityRoom"] = ["9Z"]
        result = ldap_filter.apply(update)
        assert result.applied
        assert server.get("cn=A B,o=L").first("definityRoom") == "9Z"
        # Still one person.
        assert len(ldap_filter.person_entries()) == 1

    def test_unique_dn_on_cn_collision(self, stack):
        server, _gateway, ldap_filter = stack
        ldap_filter.apply(self._add_update("4100", cn="A B"))
        ldap_filter.apply(self._add_update("4200", cn="A B"))
        dns = {str(e.dn) for e in ldap_filter.person_entries()}
        assert dns == {"cn=A B,o=L", "cn=A B (4200),o=L"}

    def test_locate(self, stack):
        _server, _gateway, ldap_filter = stack
        ldap_filter.apply(self._add_update("4100", cn="A B"))
        assert ldap_filter.locate("definityExtension", "4100") is not None
        assert ldap_filter.locate("definityExtension", "9999") is None

    def test_delete_strips_but_preserves_identity(self, stack):
        server, _gateway, ldap_filter = stack
        ldap_filter.apply(self._add_update("4100", cn="A B"))
        update = TargetUpdate(
            action=TargetAction.DELETE,
            target="ldap",
            key="4100",
            old_key="4100",
            key_attribute="definityExtension",
            old_attributes={"definityExtension": ["4100"], "cn": ["A B"]},
        )
        ldap_filter.apply(update)
        entry = server.get("cn=A B,o=L")
        assert not entry.has("definityExtension")
        assert entry.first("cn") == "A B"

    def test_modify_missing_without_conditional_fails(self, stack):
        _server, _gateway, ldap_filter = stack
        update = TargetUpdate(
            action=TargetAction.MODIFY,
            target="ldap",
            key="4100",
            old_key="4100",
            key_attribute="definityExtension",
            changed={"definityRoom": ["1"]},
        )
        with pytest.raises(FilterError):
            ldap_filter.apply(update)
