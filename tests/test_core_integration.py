"""End-to-end integration tests for the MetaComm core.

Each class exercises one of the paper's central behaviours through the
full Figure-1 stack: LTAP gateway → Update Manager → filters → devices.
"""

import pytest

from repro.core import MetaComm, MetaCommConfig, PbxConfig
from repro.ldap import Modification
from repro.schemas import PERSON_CLASSES


def person_attrs(cn, sn, **extra):
    attrs = {"objectClass": list(PERSON_CLASSES), "cn": cn, "sn": sn}
    attrs.update(extra)
    return attrs


@pytest.fixture
def system():
    return MetaComm(MetaCommConfig(organizations=("Marketing", "R&D")))


@pytest.fixture
def conn(system):
    return system.connection()


class TestLdapOriginatedUpdates:
    """The WBA path: updates through LTAP fan out to every device."""

    def test_add_provisions_pbx_and_messaging(self, system, conn):
        conn.add(
            "cn=John Doe,o=Marketing,o=Lucent",
            person_attrs(
                "John Doe", "Doe",
                definityExtension="4100",
                telephoneNumber="+1 908 582 4100",
            ),
        )
        station = system.pbx().station("4100")
        assert station["Name"] == "Doe, John"
        subscriber = system.messaging.subscriber("+1 908 582 4100")
        assert subscriber["SubscriberName"] == "John Doe"

    def test_generated_mailbox_id_folds_back(self, system, conn):
        """Section 5.5: device-generated info reaches the LDAP server."""
        conn.add(
            "cn=A B,o=Lucent",
            person_attrs("A B", "B", definityExtension="4100"),
        )
        mailbox = system.messaging.mailbox_of("+1 908 582 4100")
        entry = conn.get("cn=A B,o=Lucent")
        assert entry.get("mpMailboxId") == [mailbox]

    def test_transitive_closure_derives_phone_from_extension(self, system, conn):
        conn.add(
            "cn=A B,o=Lucent",
            person_attrs("A B", "B", definityExtension="4123"),
        )
        entry = conn.get("cn=A B,o=Lucent")
        assert entry.get("telephoneNumber") == ["+1 908 582 4123"]

    def test_transitive_closure_derives_extension_from_phone(self, system, conn):
        conn.add(
            "cn=A B,o=Lucent",
            person_attrs("A B", "B", telephoneNumber="+1 908 582 4321"),
        )
        entry = conn.get("cn=A B,o=Lucent")
        assert entry.get("definityExtension") == ["4321"]
        assert system.pbx().contains("4321")

    def test_modify_propagates_to_devices(self, system, conn):
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        conn.modify(
            "cn=A B,o=Lucent", [Modification.replace("definityRoom", "2B-110")]
        )
        assert system.pbx().station("4100")["Room"] == "2B-110"

    def test_delete_cleans_all_devices(self, system, conn):
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        conn.delete("cn=A B,o=Lucent")
        assert not system.pbx().contains("4100")
        assert not system.messaging.contains("+1 908 582 4100")

    def test_person_without_devices_touches_nothing(self, system, conn):
        conn.add("cn=NoPhone,o=Lucent", person_attrs("NoPhone", "NoPhone"))
        assert system.pbx().size() == 0
        assert system.messaging.size() == 0

    def test_last_updater_stamped(self, system, conn):
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        assert conn.get("cn=A B,o=Lucent").get("lastUpdater") == ["ldap"]

    def test_consistency_oracle(self, system, conn):
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        assert system.consistent()
        # Sabotage the device behind MetaComm's back, without notification.
        system.pbx()._records["4100"]["Room"] = "sneaky"
        assert not system.consistent()
        assert any("Room" in p or "definityRoom" in p for p in system.inconsistencies())


class TestDirectDeviceUpdates:
    """Section 4.4's DDU sequence, driven from the craft terminal."""

    def test_ddu_add_materializes_person(self, system, conn):
        system.terminal().execute('add station 4200 name "Smith, Pat" room 3C')
        (entry,) = system.find_person("(definityExtension=4200)")
        assert entry.first("cn") == "Pat Smith"
        assert entry.first("definityRoom") == "3C"
        assert entry.first("lastUpdater") == "definity"

    def test_ddu_propagates_to_other_device(self, system, conn):
        system.terminal().execute('add station 4200 name "Smith, Pat"')
        subscriber = system.messaging.subscriber("+1 908 582 4200")
        assert subscriber["SubscriberName"] == "Pat Smith"

    def test_ddu_modify_updates_directory(self, system, conn):
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        system.terminal().execute("change station 4100 room 5D")
        entry = conn.get("cn=A B,o=Lucent")
        assert entry.first("definityRoom") == "5D"

    def test_ddu_delete_strips_directory_attributes(self, system, conn):
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        system.terminal().execute("remove station 4100")
        entry = conn.get("cn=A B,o=Lucent")
        assert not entry.has("definityExtension")
        # The person survives — only the device data is gone.
        assert entry.first("cn") == "A B"

    def test_ddu_reapplied_to_origin_as_conditional(self, system, conn):
        """Write-write consistency: the UM reapplies the DDU to the device
        that originated it (sections 4.4/5.4)."""
        system.terminal().execute('add station 4200 name "Smith, Pat"')
        binding = system.um.binding("definity")
        assert binding.filter.statistics["conditional"] >= 1
        assert system.um.statistics["reapplied"] >= 1
        assert system.consistent()

    def test_ddu_name_change_is_rdn_pair(self, system, conn):
        """Section 5.1: a DDU that changes the naming attribute becomes a
        ModifyRDN + Modify pair at the LDAP level."""
        system.terminal().execute('add station 4200 name "Smith, Pat" room 1A')
        system.terminal().execute('change station 4200 name "Smith, Patricia" room 9Z')
        hits = system.find_person("(definityExtension=4200)")
        assert [e.first("cn") for e in hits] == ["Patricia Smith"]
        assert hits[0].first("definityRoom") == "9Z"
        assert not system.find_person("(cn=Pat Smith)")

    def test_device_usable_without_metacomm(self):
        from repro.devices import DefinityPbx

        lone = DefinityPbx("standalone", ("4",))
        lone.add_station("4100", Name="Solo")  # no listener, no crash
        assert lone.station("4100")["Name"] == "Solo"

    def test_concurrent_paths_converge(self, system, conn):
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        system.terminal().execute("change station 4100 room 1A")
        conn.modify("cn=A B,o=Lucent", [Modification.replace("definityCOS", "2")])
        system.terminal().execute("change station 4100 building X")
        assert system.consistent()
        station = system.pbx().station("4100")
        assert station["Room"] == "1A"
        assert station["COS"] == "2"
        assert station["Building"] == "X"


class TestMultiPbxPartitioning:
    """Section 4.2's partition migration across two switches."""

    @pytest.fixture
    def system(self):
        return MetaComm(
            MetaCommConfig(
                pbxes=[
                    PbxConfig("pbx-west", ("41", "42")),
                    PbxConfig("pbx-east", ("43",)),
                ]
            )
        )

    def test_add_routes_to_owning_pbx(self, system, conn):
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        assert system.pbx("pbx-west").contains("4100")
        assert not system.pbx("pbx-east").contains("4100")

    def test_extension_change_migrates_between_pbxes(self, system, conn):
        """'lexpress translates a modification of a telephone number into
        two updates: a deletion in one PBX and an add in another PBX.'"""
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        conn.modify(
            "cn=A B,o=Lucent",
            [
                Modification.replace("definityExtension", "4300"),
                Modification.replace("telephoneNumber", "+1 908 582 4300"),
            ],
        )
        assert not system.pbx("pbx-west").contains("4100")
        assert system.pbx("pbx-east").contains("4300")
        assert system.consistent()

    def test_modify_within_partition_stays(self, system, conn):
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        conn.modify(
            "cn=A B,o=Lucent",
            [
                Modification.replace("definityExtension", "4250"),
                Modification.replace("telephoneNumber", "+1 908 582 4250"),
            ],
        )
        assert system.pbx("pbx-west").contains("4250")
        assert not system.pbx("pbx-west").contains("4100")
        assert system.pbx("pbx-east").size() == 0

    def test_ddu_on_one_pbx_does_not_leak_to_other(self, system, conn):
        system.terminal("pbx-west").execute('add station 4100 name "A, B"')
        assert system.pbx("pbx-west").contains("4100")
        assert not system.pbx("pbx-east").contains("4100")
        assert system.consistent()


class TestFailureHandling:
    """Section 4.4: aborted sequences, the error log, admin notification."""

    def test_device_failure_logged_and_admin_notified(self, system, conn):
        pages = []
        system.error_log.add_admin_listener(pages.append)

        def explode(op, key):
            from repro.devices import InvalidFieldError

            raise InvalidFieldError("injected device fault")

        system.pbx().fault_injector = explode
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        assert len(system.error_log) == 1
        assert pages and pages[0].target == "definity"
        assert "injected" in pages[0].message
        assert system.um.statistics["aborted_sequences"] == 1

    def test_abort_stops_remaining_sequence(self, system, conn):
        def explode(op, key):
            from repro.devices import InvalidFieldError

            raise InvalidFieldError("boom")

        system.pbx().fault_injector = explode
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        # PBX failed first; with abort_on_failure the MP was never touched.
        assert system.messaging.size() == 0

    def test_best_effort_mode_continues(self):
        system = MetaComm(MetaCommConfig(abort_on_failure=False))
        conn = system.connection()

        def explode(op, key):
            from repro.devices import InvalidFieldError

            raise InvalidFieldError("boom")

        system.pbx().fault_injector = explode
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        assert system.messaging.size() == 1  # MP still provisioned

    def test_error_entries_browsable_and_clearable(self, system, conn):
        def explode(op, key):
            from repro.devices import InvalidFieldError

            raise InvalidFieldError("boom")

        system.pbx().fault_injector = explode
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        (error,) = system.error_log.entries()
        assert error.first("metacommErrorTarget") == "definity"
        assert system.error_log.clear() == 1
        assert len(system.error_log) == 0

    def test_resync_repairs_after_failure(self, system, conn):
        from repro.devices import InvalidFieldError

        calls = {"n": 0}

        def explode_once(op, key):
            if calls["n"] == 0:
                calls["n"] += 1
                raise InvalidFieldError("transient fault")

        system.pbx().fault_injector = explode_once
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        assert not system.pbx().contains("4100")  # the update was lost
        system.pbx().fault_injector = None
        report = system.sync.push_directory("definity")
        assert report.added == 1
        assert system.pbx().contains("4100")
        # The aborted sequence also skipped the derived LDAP attributes and
        # the messaging platform; a from-device sync completes the repair.
        system.sync.synchronize("definity")
        assert system.consistent()
        assert system.messaging.contains("+1 908 582 4100")


class TestUmCrashWindow:
    """Section 5.1: a UM crash between ModifyRDN and Modify leaves readers
    an inconsistent entry until resynchronization repairs it."""

    def test_crash_between_rdn_and_modify(self, system, conn):
        from repro.core import UmCrash

        system.terminal().execute('add station 4200 name "Smith, Pat" room 1A')

        def crash(stage):
            raise UmCrash(stage)

        system.ldap_filter.crash_hook = crash
        with pytest.raises(UmCrash):
            system.terminal().execute(
                'change station 4200 name "Smith, Patricia" room 9Z'
            )
        system.ldap_filter.crash_hook = None

        # The rename happened but the room did not follow: readers see an
        # inconsistent entry, exactly the window the paper describes.
        (entry,) = system.find_person("(definityExtension=4200)")
        assert entry.first("cn") == "Patricia Smith"
        assert entry.first("definityRoom") != "9Z"

        # Restart + resynchronize: the device is authoritative.
        report = system.sync.synchronize("definity")
        assert report.modified >= 1
        (entry,) = system.find_person("(definityExtension=4200)")
        assert entry.first("definityRoom") == "9Z"
        assert system.consistent()


class TestLocking:
    def test_lock_held_during_whole_sequence(self, system):
        """LTAP blocks conflicting LDAP updates until the UM finishes."""
        holds = []
        original_apply = system.um.bindings[0].filter.apply

        def spying_apply(update):
            holds.append(system.gateway.locks.held_count() > 0)
            return original_apply(update)

        system.um.bindings[0].filter.apply = spying_apply
        system.connection().add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        assert holds and all(holds)

    def test_no_locks_leak_after_updates(self, system, conn):
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        system.terminal().execute("change station 4100 room 1A")
        assert system.gateway.locks.held_count() == 0


class TestIdentityResolution:
    """A person whose device data was stripped is re-attached, not
    duplicated, when the device record comes back (found by the stateful
    property machine)."""

    def test_rehire_after_station_removal_reattaches(self, system, conn):
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        system.terminal().execute("remove station 4100")
        # The person survived with device data stripped; now the station
        # comes back on the craft terminal.
        system.terminal().execute('add station 4100 name "B, A"')
        people = system.find_person("(cn=A B)")
        assert len(people) == 1  # no duplicate "A B (4100)" entry
        assert people[0].first("definityExtension") == "4100"
        assert system.consistent()

    def test_same_name_different_extension_not_merged(self, system, conn):
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        # A second, distinct person with the same name on another station.
        system.terminal().execute('add station 4200 name "B, A"')
        people = system.find_person("(cn=A B*)")
        assert len(people) == 2
        extensions = {p.first("definityExtension") for p in people}
        assert extensions == {"4100", "4200"}
        assert system.consistent()


class TestFanoutModes:
    """The staged pipeline must behave identically whether the fan-out
    stage runs devices serially or on a worker pool — every scenario here
    is checked against the consistent() oracle in both modes."""

    @pytest.fixture(params=[1, 4], ids=["serial", "parallel"])
    def fleet(self, request):
        fleet = MetaComm(
            MetaCommConfig(
                pbxes=[
                    PbxConfig("pbx-1", ("4",)),
                    PbxConfig("pbx-2", ("4",)),
                    PbxConfig("pbx-3", ("4",)),
                ],
                fanout_workers=request.param,
            )
        )
        yield fleet
        fleet.close()

    def test_add_reaches_every_repository(self, fleet):
        fleet.connection().add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        for name in ("pbx-1", "pbx-2", "pbx-3"):
            assert fleet.pbxes[name].contains("4100")
        assert fleet.messaging.size() == 1
        assert fleet.consistent()

    def test_modify_and_delete(self, fleet):
        conn = fleet.connection()
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        conn.modify(
            "cn=A B,o=Lucent", [Modification.replace("definityCos", "2")]
        )
        for name in ("pbx-1", "pbx-2", "pbx-3"):
            assert fleet.pbxes[name].get("4100")["COS"] == "2"
        assert fleet.consistent()
        conn.delete("cn=A B,o=Lucent")
        for name in ("pbx-1", "pbx-2", "pbx-3"):
            assert not fleet.pbxes[name].contains("4100")
        assert fleet.messaging.size() == 0
        assert fleet.consistent()

    def test_ddu_propagates_to_peers(self, fleet):
        fleet.terminal("pbx-2").execute('add station 4100 name "B, A"')
        for name in ("pbx-1", "pbx-2", "pbx-3"):
            assert fleet.pbxes[name].contains("4100")
        assert fleet.consistent()

    def test_abort_leaves_no_partial_state(self, fleet):
        def explode(op, key):
            from repro.devices import InvalidFieldError

            raise InvalidFieldError("injected fault")

        fleet.pbxes["pbx-2"].fault_injector = explode
        fleet.connection().add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        # Serial mode never reached pbx-3/messaging; parallel mode rolled
        # them back — either way nothing past the failure survives.
        assert not fleet.pbxes["pbx-3"].contains("4100")
        assert fleet.messaging.size() == 0
        assert len(fleet.error_log) == 1

    def test_best_effort_continues_past_failure(self):
        for workers in (1, 4):
            fleet = MetaComm(
                MetaCommConfig(
                    pbxes=[
                        PbxConfig("pbx-1", ("4",)),
                        PbxConfig("pbx-2", ("4",)),
                        PbxConfig("pbx-3", ("4",)),
                    ],
                    abort_on_failure=False,
                    fanout_workers=workers,
                )
            )
            try:

                def explode(op, key):
                    from repro.devices import InvalidFieldError

                    raise InvalidFieldError("injected fault")

                fleet.pbxes["pbx-2"].fault_injector = explode
                fleet.connection().add(
                    "cn=A B,o=Lucent",
                    person_attrs("A B", "B", definityExtension="4100"),
                )
                assert fleet.pbxes["pbx-1"].contains("4100")
                assert fleet.pbxes["pbx-3"].contains("4100")
                assert fleet.messaging.size() == 1
                assert len(fleet.error_log) == 1
            finally:
                fleet.close()
