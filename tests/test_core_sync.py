"""Tests for synchronization: initial load, disconnected recovery, quiesce
isolation and persistent connections (paper sections 4.4 and 5.1)."""

import pytest

from repro.core import MetaComm, MetaCommConfig, PbxConfig
from repro.ldap import LdapError, ResultCode
from repro.schemas import PERSON_CLASSES


def person_attrs(cn, sn, **extra):
    attrs = {"objectClass": list(PERSON_CLASSES), "cn": cn, "sn": sn}
    attrs.update(extra)
    return attrs


@pytest.fixture
def system():
    return MetaComm(MetaCommConfig())


class TestInitialLoad:
    """Populating an empty directory from a device that already has data."""

    def test_initial_load_from_pbx(self, system):
        pbx = system.pbx()
        # Simulate pre-existing stations administered before MetaComm: go
        # behind the filter's back entirely.
        for ext, name in (("4100", "Doe, John"), ("4101", "Lu, Jill")):
            pbx._records[ext] = {"Extension": ext, "Name": name}

        report = system.sync.synchronize("definity")
        assert report.added == 2
        assert report.errors == []
        people = system.find_person("(objectClass=person)")
        assert {e.first("cn") for e in people} == {"John Doe", "Jill Lu"}
        assert system.consistent()

    def test_initial_load_provisions_other_devices_too(self, system):
        system.pbx()._records["4100"] = {"Extension": "4100", "Name": "Doe, John"}
        system.sync.synchronize("definity")
        # "other devices that share the data being synchronized are
        # consistent" — the MP got its subscriber.
        assert system.messaging.contains("+1 908 582 4100")

    def test_idempotent_second_run(self, system):
        system.pbx()._records["4100"] = {"Extension": "4100", "Name": "Doe, John"}
        first = system.sync.synchronize("definity")
        second = system.sync.synchronize("definity")
        assert first.added == 1
        assert second.added == 0
        assert second.modified == 0
        assert second.skipped >= 1


class TestDisconnectedRecovery:
    """Lost updates while device and directory could not talk."""

    def test_updates_made_while_disconnected_recovered(self, system):
        conn = system.connection()
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        # Disconnect: changes at the device do not reach the UM.
        binding = system.um.binding("definity")
        binding._saved_handler = binding.filter._ddu_handler
        binding.filter._ddu_handler = None
        system.pbx().change_station("4100", Room="7G")
        assert not system.consistent()

        # Reconnect and resynchronize.
        binding.filter._ddu_handler = binding._saved_handler
        report = system.sync.synchronize("definity")
        assert report.modified == 1
        entry = conn.get("cn=A B,o=Lucent")
        assert entry.first("definityRoom") == "7G"
        assert system.consistent()

    def test_station_removed_while_disconnected(self, system):
        conn = system.connection()
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        binding = system.um.binding("definity")
        handler = binding.filter._ddu_handler
        binding.filter._ddu_handler = None
        system.pbx().remove_station("4100")
        binding.filter._ddu_handler = handler

        report = system.sync.synchronize("definity")
        assert report.deleted == 1
        entry = conn.get("cn=A B,o=Lucent")
        assert not entry.has("definityExtension")

    def test_sync_report_renders(self, system):
        report = system.sync.synchronize("definity")
        text = str(report)
        assert "definity" in text and "examined=" in text


class TestQuiesceIsolation:
    """Section 5.1: sync sequences run in isolation."""

    def test_updates_blocked_during_sync(self, system):
        blocked = []
        original = system.sync._sync_records_in

        def probing(binding, report, session, connection):
            other = system.connection()
            try:
                other.add("cn=Intruder,o=Lucent", person_attrs("Intruder", "I"))
            except LdapError as exc:
                blocked.append(exc.code)
            return original(binding, report, session, connection)

        system.sync._sync_records_in = probing
        system.pbx()._records["4100"] = {"Extension": "4100", "Name": "A, B"}
        system.sync.synchronize("definity")
        assert blocked == [ResultCode.BUSY]

    def test_quiesce_released_after_sync(self, system):
        system.sync.synchronize("definity")
        assert not system.gateway.quiesced
        system.connection().add("cn=After,o=Lucent", person_attrs("After", "A"))

    def test_quiesce_released_after_sync_error(self, system):
        system.pbx()._records["4100"] = {"Extension": "4100", "Name": "A, B"}

        def explode(*args, **kwargs):
            raise RuntimeError("sync blew up")

        system.sync._sync_records_in = explode
        with pytest.raises(RuntimeError):
            system.sync.synchronize("definity")
        assert not system.gateway.quiesced


class TestPersistentConnections:
    """Section 5.1: a sync is a sequence of updates on one connection."""

    def test_sync_uses_one_persistent_connection(self, system):
        for ext in ("4100", "4101", "4102"):
            system.pbx()._records[ext] = {"Extension": ext, "Name": f"U, {ext}"}
        before = dict(system.um.connections.statistics)
        system.sync.synchronize("definity")
        after = system.um.connections.statistics
        assert after["persistent"] == before["persistent"] + 1
        assert after["events"] >= before["events"] + 3

    def test_individual_updates_do_not_open_persistent_connections(self, system):
        before = system.um.connections.statistics["persistent"]
        system.connection().add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        assert system.um.connections.statistics["persistent"] == before


class TestPushDirectory:
    """Directory-authoritative provisioning of a fresh device."""

    def test_provisions_empty_device(self, system):
        conn = system.connection()
        for i in range(3):
            conn.add(
                f"cn=U{i},o=Lucent",
                person_attrs(f"U{i}", "U", definityExtension=f"41{i:02d}"),
            )
        # Wipe the PBX (simulating replacement hardware).
        for key in system.pbx().keys():
            system.pbx()._records.pop(key)
        assert system.pbx().size() == 0

        report = system.sync.push_directory("definity")
        assert report.added == 3
        assert system.pbx().size() == 3

    def test_removes_unsanctioned_records(self, system):
        system.pbx()._records["4999"] = {"Extension": "4999", "Name": "Ghost"}
        report = system.sync.push_directory("definity")
        assert report.deleted == 1
        assert not system.pbx().contains("4999")

    def test_respects_partition(self):
        system = MetaComm(
            MetaCommConfig(
                pbxes=[PbxConfig("pbx-a", ("41",)), PbxConfig("pbx-b", ("42",))]
            )
        )
        conn = system.connection()
        conn.add(
            "cn=A,o=Lucent", person_attrs("A", "A", definityExtension="4100")
        )
        conn.add(
            "cn=B,o=Lucent", person_attrs("B", "B", definityExtension="4200")
        )
        for pbx_name in ("pbx-a", "pbx-b"):
            for key in system.pbx(pbx_name).keys():
                system.pbx(pbx_name)._records.pop(key)
        report_a = system.sync.push_directory("pbx-a")
        report_b = system.sync.push_directory("pbx-b")
        assert report_a.added == 1 and report_b.added == 1
        assert system.pbx("pbx-a").contains("4100")
        assert system.pbx("pbx-b").contains("4200")

    def test_skips_up_to_date_records(self, system):
        conn = system.connection()
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        report = system.sync.push_directory("definity")
        assert report.added == 0
        assert report.modified == 0
        assert report.skipped >= 1
