"""Unit tests for the smaller core components: the error log, the global
update queue, and ACL decision corners."""

import pytest

from repro.core.errorlog import ErrorLog
from repro.core.queue import GlobalUpdateQueue
from repro.ldap import DN, LdapConnection, LdapServer, Session
from repro.lexpress import UpdateDescriptor, UpdateOp
from repro.ltap import AccessControl, AclRule, Rights, Subject


@pytest.fixture
def server():
    s = LdapServer(["o=L"])
    LdapConnection(s).add("o=L", {"objectClass": "organization", "o": "L"})
    return s


class TestErrorLog:
    def test_base_created_under_suffix(self, server):
        log = ErrorLog(server, "o=L")
        assert server.backend.contains(DN.parse("ou=errors,o=L"))

    def test_record_creates_browsable_entry(self, server):
        log = ErrorLog(server, "o=L")
        note = log.record("pbx-west", "translation table full", context="ctx")
        assert note.target == "pbx-west"
        (entry,) = log.entries()
        assert entry.first("metacommError") == "translation table full"
        assert entry.first("metacommErrorTarget") == "pbx-west"
        assert entry.first("description") == "ctx"

    def test_errors_ordered_and_unique(self, server):
        log = ErrorLog(server, "o=L")
        for i in range(3):
            log.record("d", f"error {i}")
        names = [e.first("cn") for e in log.entries()]
        assert names == sorted(names)
        assert len(set(names)) == 3

    def test_admin_listeners(self, server):
        log = ErrorLog(server, "o=L")
        pages = []
        log.add_admin_listener(pages.append)
        log.record("mp", "boom")
        assert len(pages) == 1
        assert pages[0].message == "boom"
        assert pages[0].dn.startswith("cn=error-")

    def test_clear(self, server):
        log = ErrorLog(server, "o=L")
        log.record("d", "x")
        log.record("d", "y")
        assert len(log) == 2
        assert log.clear() == 2
        assert len(log) == 0

    def test_long_messages_truncated(self, server):
        log = ErrorLog(server, "o=L")
        log.record("d", "m" * 2000)
        (entry,) = log.entries()
        assert len(entry.first("metacommError")) == 512

    def test_two_logs_share_base(self, server):
        ErrorLog(server, "o=L")
        ErrorLog(server, "o=L")  # second instantiation must not fail


class TestGlobalUpdateQueue:
    @staticmethod
    def descriptor(key):
        return UpdateDescriptor(
            UpdateOp.ADD, "ldap", key, new={"cn": [key]}
        )

    def test_fifo_order(self):
        queue = GlobalUpdateQueue()
        for key in ("a", "b", "c"):
            queue.enqueue(self.descriptor(key))
        keys = [queue.dequeue().descriptor.key for _ in range(3)]
        assert keys == ["a", "b", "c"]

    def test_serials_strictly_increase(self):
        queue = GlobalUpdateQueue()
        serials = [queue.enqueue(self.descriptor(str(i))).serial for i in range(5)]
        assert serials == sorted(serials)
        assert len(set(serials)) == 5

    def test_dequeue_empty_returns_none(self):
        assert GlobalUpdateQueue().dequeue() is None

    def test_len_and_peek(self):
        queue = GlobalUpdateQueue()
        assert len(queue) == 0
        assert queue.peek_serial() is None
        item = queue.enqueue(self.descriptor("x"))
        assert len(queue) == 1
        assert queue.peek_serial() == item.serial

    def test_statistics(self):
        queue = GlobalUpdateQueue()
        queue.enqueue(self.descriptor("x"))
        queue.dequeue()
        queue.dequeue()
        assert queue.statistics == {"enqueued": 1, "processed": 1}

    def test_depth_gauge_tracks_transitions(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        queue = GlobalUpdateQueue(registry=registry)
        assert registry.value("metacomm_queue_depth") == 0
        queue.enqueue(self.descriptor("a"))
        queue.enqueue(self.descriptor("b"))
        assert registry.value("metacomm_queue_depth") == 2
        queue.dequeue()
        assert registry.value("metacomm_queue_depth") == 1
        queue.dequeue()
        assert registry.value("metacomm_queue_depth") == 0

    def test_oldest_age_gauge(self):
        import time

        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        queue = GlobalUpdateQueue(registry=registry)
        assert queue.oldest_age() == 0.0
        queue.enqueue(self.descriptor("a"))
        time.sleep(0.01)
        age = queue.refresh_staleness()
        assert age >= 0.01
        assert registry.value("metacomm_queue_oldest_age_seconds") == age
        # Age follows the *oldest* item: a second enqueue doesn't reset it.
        queue.enqueue(self.descriptor("b"))
        assert queue.oldest_age() >= age
        queue.dequeue()
        queue.dequeue()
        # Drained: the gauge drops back to zero on the dequeue transition.
        assert queue.oldest_age() == 0.0
        assert registry.value("metacomm_queue_oldest_age_seconds") == 0.0

    def test_last_serial_tracks_claim_and_enqueue(self):
        queue = GlobalUpdateQueue()
        assert queue.last_serial == 0
        queue.enqueue(self.descriptor("a"))
        assert queue.last_serial == 1
        queue.claim(self.descriptor("b"))
        assert queue.last_serial == 2

    def test_journal_events_on_enqueue_claim_dequeue(self):
        from repro.obs import EventJournal

        journal = EventJournal()
        queue = GlobalUpdateQueue(journal=journal)
        queue.enqueue(self.descriptor("a"), trace="trace-9")
        queue.dequeue()
        queue.claim(self.descriptor("b"))
        kinds = [e.kind for e in journal.events()]
        assert kinds == [
            "update.accepted",
            "update.claimed",
            "update.accepted",
            "update.claimed",
        ]
        first = journal.events()[0]
        assert first.trace_id == "trace-9"
        assert first.attributes["serial"] == 1
        assert first.attributes["op"] == "add"


class TestAclDecisions:
    def test_default_allow_and_deny(self):
        target = DN.parse("cn=X,o=L")
        assert AccessControl(default_allow=True).decide(
            Session(), Rights.READ, target
        )
        assert not AccessControl(default_allow=False).decide(
            Session(), Rights.READ, target
        )

    def test_rights_mismatch_skips_rule(self):
        acl = AccessControl(default_allow=False)
        acl.allow(Subject.ANYONE, rights=Rights.READ)
        assert not acl.decide(Session(), Rights.WRITE, DN.parse("cn=X,o=L"))

    def test_first_match_wins_over_later_allow(self):
        acl = AccessControl(default_allow=False)
        acl.deny(Subject.ANONYMOUS, rights=Rights.READ)
        acl.allow(Subject.ANYONE, rights=Rights.READ)
        anonymous = Session()
        bound = Session()
        bound.bound_dn = DN.parse("cn=U,o=L")
        target = DN.parse("cn=X,o=L")
        assert not acl.decide(anonymous, Rights.READ, target)
        assert acl.decide(bound, Rights.READ, target)

    def test_attribute_scoped_write_rule(self):
        acl = AccessControl(default_allow=False)
        acl.allow(Subject.AUTHENTICATED, rights=Rights.WRITE,
                  attributes=("mail", "telephoneNumber"))
        session = Session()
        session.bound_dn = DN.parse("cn=U,o=L")
        target = DN.parse("cn=X,o=L")
        assert acl.decide(session, Rights.WRITE, target, frozenset({"mail"}))
        assert not acl.decide(
            session, Rights.WRITE, target, frozenset({"mail", "sn"})
        )

    def test_subtree_base_scoping(self):
        acl = AccessControl(default_allow=False)
        acl.allow(Subject.ANYONE, rights=Rights.READ, base="o=Open,o=L")
        session = Session()
        assert acl.decide(session, Rights.READ, DN.parse("cn=X,o=Open,o=L"))
        assert not acl.decide(session, Rights.READ, DN.parse("cn=X,o=L"))

    def test_specific_dn_subject(self):
        acl = AccessControl(default_allow=False)
        acl.allow("cn=root,o=L", rights=Rights.ALL)
        root, other = Session(), Session()
        root.bound_dn = DN.parse("cn=root,o=L")
        other.bound_dn = DN.parse("cn=other,o=L")
        target = DN.parse("cn=X,o=L")
        assert acl.decide(root, Rights.WRITE, target)
        assert not acl.decide(other, Rights.WRITE, target)

    def test_self_subject(self):
        acl = AccessControl(default_allow=False)
        acl.allow(Subject.SELF, rights=Rights.WRITE)
        session = Session()
        session.bound_dn = DN.parse("cn=Me,o=L")
        assert acl.decide(session, Rights.WRITE, DN.parse("cn=Me,o=L"))
        assert not acl.decide(session, Rights.WRITE, DN.parse("cn=You,o=L"))

    def test_rule_object_api(self):
        rule = AclRule(allow=True, rights=Rights.READ)
        acl = AccessControl(default_allow=False)
        acl.add_rule(rule)
        assert acl.decide(Session(), Rights.READ, DN.parse("cn=X,o=L"))
