"""Tests for the event-driven device-link layer (repro.devices.links).

Covers the link unit semantics (batching, bounded in-flight window,
queue-limit defer/reject, FIFO order, clean shutdown), the non-blocking
``submit`` surfaces on devices / OSSI terminals / device filters, the
window=1/batch=1 equivalence guarantee against the paper-serial fan-out,
the HealthBoard dual feed under a flapping link, and the backpressure
chain from a stalled link through the sharded queue's lane depth limit
up to LTAP's typed ServerBusy answer (docs/DEVICE_LINKS.md).
"""

import threading
import time

import pytest

from repro.core import MetaComm, MetaCommConfig, PbxConfig
from repro.devices import (
    Device,
    DeviceError,
    FieldSpec,
    InvalidFieldError,
)
from repro.devices.links import LinkBusy, LinkConfig, LinkDispatcher
from repro.core.filters.base import FilterError
from repro.ldap import LdapError
from repro.ldap.result import ResultCode
from repro.lexpress.descriptor import UpdateDescriptor, UpdateOp
from repro.obs.alerts import AlertRule
from repro.obs.events import (
    LINK_FLUSH,
    UPDATE_ACCEPTED,
    UPDATE_DEFERRED,
    UPDATE_REJECTED,
)
from repro.schemas import PERSON_CLASSES


def person_attrs(cn, sn, **extra):
    attrs = {"objectClass": list(PERSON_CLASSES), "cn": cn, "sn": sn}
    attrs.update(extra)
    return attrs


def person_image(cn, **extra):
    image = {
        "objectClass": list(PERSON_CLASSES),
        "cn": [cn],
        "sn": [cn.split()[-1]],
    }
    image.update({k: [v] for k, v in extra.items()})
    return image


def linked_fleet(n_pbxes=3, **overrides):
    """A links-enabled system whose PBXes share the extension prefix, so
    one update fans out to every binding."""
    overrides.setdefault("device_links", True)
    return MetaComm(
        MetaCommConfig(
            pbxes=[PbxConfig(f"pbx-{i + 1}", ("4",)) for i in range(n_pbxes)],
            **overrides,
        )
    )


def error_records(system):
    return [
        (
            entry.first("metacommErrorTarget"),
            entry.first("metacommError"),
            entry.first("description"),
        )
        for entry in system.error_log.entries()
    ]


def device_states(system):
    return {
        binding.name: sorted(
            tuple(sorted((k, tuple(v)) for k, v in record.items()))
            for record in binding.filter.dump()
        )
        for binding in system.um.bindings
    }


def explode(op, key):
    raise InvalidFieldError("injected device fault")


def make_device(name="dev", latency=0.0):
    device = Device(
        name,
        "Extension",
        [FieldSpec("Extension", required=True), FieldSpec("Name")],
    )
    device.link_latency = latency
    return device


def wait_until(predicate, timeout=5.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


# -- link unit semantics -----------------------------------------------------


class TestDeviceLinkUnit:
    @pytest.fixture
    def dispatcher(self):
        dispatcher = LinkDispatcher()
        try:
            yield dispatcher
        finally:
            dispatcher.stop()

    def test_submit_applies_and_resolves_future(self, dispatcher):
        device = make_device()
        dispatcher.register(device)
        dispatcher.start()
        future = device.submit("add", {"Extension": "100", "Name": "A"})
        record = future.result(timeout=5)
        assert record == {"Extension": "100", "Name": "A"}
        assert device.contains("100")

    def test_submit_validates_op(self, dispatcher):
        device = make_device()
        dispatcher.register(device)
        with pytest.raises(InvalidFieldError):
            device.submit("dump")

    def test_submit_without_link_raises(self):
        device = make_device()
        with pytest.raises(DeviceError, match="no device link"):
            device.submit("add", {"Extension": "100"})

    def test_pause_coalesces_one_batch(self, dispatcher):
        device = make_device(latency=0.01)
        link = dispatcher.register(device)
        dispatcher.start()
        link.pause()
        futures = [
            device.submit("add", {"Extension": str(100 + i)})
            for i in range(5)
        ]
        link.resume()
        for future in futures:
            future.result(timeout=5)
        snapshot = link.snapshot()
        # One pipelined command stream, one round-trip, five ops.
        assert snapshot["flushes"] == 1
        assert snapshot["batch_sizes"] == {5: 1}
        assert snapshot["completed"] == 5 and snapshot["failed"] == 0

    def test_window_bounds_inflight_batches(self, dispatcher):
        device = make_device(latency=0.05)
        link = dispatcher.register(device, LinkConfig(window=2, batch=1))
        dispatcher.start()
        futures = [
            device.submit("add", {"Extension": str(100 + i)})
            for i in range(6)
        ]
        peak = 0
        while not all(f.done() for f in futures):
            peak = max(peak, link.snapshot()["inflight"])
            time.sleep(0.005)
        assert peak <= 2
        assert link.snapshot()["completed"] == 6
        # Six batches of one op each: the batch knob was honoured too.
        assert link.snapshot()["batch_sizes"] == {1: 6}

    def test_per_device_fifo_order(self, dispatcher):
        device = make_device(latency=0.005)
        link = dispatcher.register(device, LinkConfig(window=3, batch=2))
        dispatcher.start()
        order = []
        futures = [
            link.submit(lambda i=i: order.append(i), op="apply", key=str(i))
            for i in range(10)
        ]
        for future in futures:
            future.result(timeout=5)
        assert order == list(range(10))

    def test_failure_resolves_future_without_poisoning_batch(self, dispatcher):
        device = make_device()
        link = dispatcher.register(device)
        dispatcher.start()
        link.pause()
        good = device.submit("add", {"Extension": "100"})
        dup = device.submit("add", {"Extension": "100"})
        after = device.submit("add", {"Extension": "101"})
        link.resume()
        assert good.result(timeout=5)["Extension"] == "100"
        with pytest.raises(DeviceError):
            dup.result(timeout=5)
        assert after.result(timeout=5)["Extension"] == "101"
        snapshot = link.snapshot()
        assert snapshot["completed"] == 2 and snapshot["failed"] == 1

    def test_queue_limit_nonblocking_reject(self, dispatcher):
        device = make_device()
        link = dispatcher.register(device, LinkConfig(queue_limit=2))
        dispatcher.start()
        link.pause()
        device.submit("add", {"Extension": "100"})
        device.submit("add", {"Extension": "101"})
        with pytest.raises(LinkBusy):
            link.submit(lambda: None, timeout=0)
        assert link.snapshot()["rejected"] == 1
        link.resume()

    def test_queue_limit_defers_until_space(self, dispatcher):
        device = make_device()
        link = dispatcher.register(device, LinkConfig(queue_limit=1))
        dispatcher.start()
        link.pause()
        first = device.submit("add", {"Extension": "100"})
        second = []

        def blocked_submit():
            second.append(device.submit("add", {"Extension": "101"}))

        thread = threading.Thread(target=blocked_submit)
        thread.start()
        wait_until(
            lambda: link.snapshot()["deferred"] >= 1, message="deferred submit"
        )
        link.resume()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert first.result(timeout=5)
        assert second[0].result(timeout=5)

    def test_stop_fails_orphan_futures(self):
        dispatcher = LinkDispatcher()
        device = make_device()
        link = dispatcher.register(device)
        dispatcher.start()
        link.pause()
        orphan = device.submit("add", {"Extension": "100"})
        dispatcher.stop()
        with pytest.raises(DeviceError, match="link stopped"):
            orphan.result(timeout=5)
        with pytest.raises(DeviceError, match="link stopped"):
            device.submit("add", {"Extension": "101"})

    def test_snapshot_shape(self, dispatcher):
        device = make_device()
        link = dispatcher.register(device, LinkConfig(window=2, batch=3, queue_limit=5))
        snapshot = link.snapshot()
        assert snapshot["device"] == "dev"
        assert snapshot["window"] == 2
        assert snapshot["batch"] == 3
        assert snapshot["queue_limit"] == 5
        assert snapshot["paused"] is False
        link.pause()
        assert link.snapshot()["paused"] is True

    def test_link_config_validation(self):
        with pytest.raises(ValueError):
            LinkConfig(window=0)
        with pytest.raises(ValueError):
            LinkConfig(batch=0)
        with pytest.raises(ValueError):
            LinkConfig(queue_limit=0)

    def test_notifications_are_deferred_and_delivered(self, dispatcher):
        device = make_device()
        dispatcher.register(device)
        dispatcher.start()
        seen = []
        threads = []

        def listener(notification):
            seen.append(notification.key)
            threads.append(threading.current_thread().name)

        device.add_listener(listener)
        device.submit("add", {"Extension": "100"}).result(timeout=5)
        wait_until(lambda: seen == ["100"], message="deferred notification")
        # Delivered by the notifier thread, never the dispatcher itself.
        assert threads == ["metacomm-link-notify"]


class TestSubmitSurfaces:
    def test_ossi_terminal_submit(self):
        system = linked_fleet(1)
        try:
            system.connection().add(
                "cn=A B,o=Lucent",
                person_attrs("A B", "B", definityExtension="4100"),
            )
            terminal = system.terminal("pbx-1")
            future = terminal.submit("change station 4100 room 2B-110")
            response = future.result(timeout=5)
            assert response.ok, response.text
            assert terminal.history[-1] == "change station 4100 room 2B-110"
            wait_until(
                lambda: system.pbx("pbx-1").station("4100").get("Room")
                == "2B-110",
                message="DDU room change",
            )
        finally:
            system.close()

    def test_ossi_terminal_submit_requires_link(self):
        system = MetaComm(MetaCommConfig())
        try:
            with pytest.raises(DeviceError, match="no device link"):
                system.terminal().submit("display station 4100")
        finally:
            system.close()

    def test_device_filter_submit_requires_link(self):
        system = MetaComm(MetaCommConfig())
        try:
            binding = system.um.bindings[0]
            with pytest.raises(FilterError, match="no device link"):
                binding.filter.submit(None)
        finally:
            system.close()

    def test_journal_and_metrics_record_flushes(self):
        system = linked_fleet(1)
        try:
            system.connection().add(
                "cn=A B,o=Lucent",
                person_attrs("A B", "B", definityExtension="4100"),
            )
            flushes = system.obs.journal.events(LINK_FLUSH)
            assert {e.attributes["device"] for e in flushes} >= {
                "pbx-1",
                "messaging",
            }
            assert all(e.attributes["ops"] >= 1 for e in flushes)
            registry = system.obs.registry
            assert registry.value(
                "metacomm_link_ops_total", device="pbx-1", outcome="ok"
            ) >= 1
            assert registry.value(
                "metacomm_link_flushes_total", device="pbx-1"
            ) >= 1
        finally:
            system.close()


# -- window=1/batch=1 equivalence with the paper-serial fan-out --------------


class TestLinkedSerialEquivalence:
    """Links at window=1/batch=1 (lanes=1) must be byte-identical with the
    serial fan-out: same error-log records, same compensation order, same
    final device states."""

    SCENARIOS = {
        "abort": dict(abort_on_failure=True, undo_on_failure=False),
        "abort+undo": dict(abort_on_failure=True, undo_on_failure=True),
        "best-effort": dict(abort_on_failure=False, undo_on_failure=False),
        "best-effort+undo": dict(
            abort_on_failure=False, undo_on_failure=True
        ),
    }

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_failure_injection_matches(self, scenario):
        results = {}
        for mode in ("serial", "links"):
            overrides = dict(self.SCENARIOS[scenario])
            if mode == "links":
                overrides.update(
                    device_links=True, link_window=1, link_batch=1
                )
            else:
                overrides.update(device_links=False)
            system = linked_fleet(3, **overrides)
            try:
                compensations = []
                original = system.um._compensate

                def spying(applied, trace=None, _log=compensations, _o=original):
                    _log.append([binding.name for binding, _, _ in applied])
                    return _o(applied, trace)

                system.um._compensate = spying
                conn = system.connection()
                conn.add(
                    "cn=OK,o=Lucent",
                    person_attrs("OK", "OK", definityExtension="4200"),
                )
                system.pbxes["pbx-3"].fault_injector = explode
                conn.add(
                    "cn=A B,o=Lucent",
                    person_attrs("A B", "B", definityExtension="4100"),
                )
                results[mode] = {
                    "errors": error_records(system),
                    "compensations": compensations,
                    "devices": device_states(system),
                    "inconsistencies": sorted(system.inconsistencies()),
                    "stats": dict(system.um.statistics),
                }
            finally:
                system.close()
        assert results["serial"] == results["links"], scenario

    def test_success_path_matches(self):
        from repro.ldap import Modification

        results = {}
        for mode in ("serial", "links"):
            overrides = (
                dict(device_links=True, link_window=1, link_batch=1)
                if mode == "links"
                else dict(device_links=False)
            )
            system = linked_fleet(3, **overrides)
            try:
                conn = system.connection()
                conn.add(
                    "cn=A B,o=Lucent",
                    person_attrs("A B", "B", definityExtension="4100"),
                )
                conn.modify(
                    "cn=A B,o=Lucent",
                    [Modification.replace("definityRoom", "2B-110")],
                )
                entry = conn.get("cn=A B,o=Lucent")
                results[mode] = {
                    "entry": sorted(
                        (k, tuple(v))
                        for k, v in entry.attributes.to_dict().items()
                    ),
                    "devices": device_states(system),
                    "consistent": system.consistent(),
                }
            finally:
                system.close()
        assert results["serial"] == results["links"]
        assert results["serial"]["consistent"]


# -- HealthBoard dual feed under a flapping link -----------------------------


class TestFlappingLinkHealth:
    def test_flapping_link_feeds_health_exactly_once_per_op(self):
        """The op_observer feed must count each link op exactly once —
        the dispatcher reports submit-to-completion latency itself and
        the in-flush ``_observed`` sample is suppressed, so a flapping
        link (stall, burst, fault, recover) cannot double-count."""
        system = linked_fleet(1, abort_on_failure=False)
        try:
            conn = system.connection()
            pbx = system.pbxes["pbx-1"]
            link = system.links.link("pbx-1")
            conn.add(
                "cn=P 0,o=Lucent",
                person_attrs("P 0", "0", definityExtension="4100"),
            )

            # Stall the link mid-update: the op completes after resume and
            # its observed latency includes the stall.
            stalled = threading.Thread(
                target=conn.add,
                args=(
                    "cn=P 1,o=Lucent",
                    person_attrs("P 1", "1", definityExtension="4101"),
                ),
            )
            link.pause()
            stalled.start()
            wait_until(
                lambda: link.snapshot()["pending"] >= 1,
                message="stalled submit",
            )
            time.sleep(0.05)
            link.resume()
            stalled.join(timeout=10)
            assert not stalled.is_alive()

            # Three consecutive injected faults: unreachable streak.
            pbx.fault_injector = explode
            for i in range(2, 5):
                conn.add(
                    f"cn=P {i},o=Lucent",
                    person_attrs(f"P {i}", str(i), definityExtension=f"410{i}"),
                )
            assert system.obs.health.snapshot()["pbx-1"]["state"] == (
                "unreachable"
            )

            # Recovery: the first success resets the unreachable streak,
            # then enough successes dilute the rolling error rate (3
            # failures need >= 12 outcomes to drop under the 0.25
            # degraded threshold) and the device is healthy again.
            pbx.fault_injector = None
            for i in range(5, 15):
                conn.add(
                    f"cn=P {i},o=Lucent",
                    person_attrs(f"P {i}", str(i), definityExtension=f"41{i:02d}"),
                )
            health = system.obs.health.snapshot()["pbx-1"]
            assert health["state"] == "healthy"
            assert health["streak"] == 0

            # The *outcome* feed saw the three injected faults (the
            # pipeline converts them to failed outcomes)...
            assert health["failures"] == 3
            assert health["successes"] == 12

            # ...and a raw link-level failure feeds link_errors: a DDU
            # against a record the switch does not have.
            raw = pbx.submit("modify", "9999", {"Room": "X"})
            with pytest.raises(DeviceError):
                raw.result(timeout=5)

            # The regression: raw link telemetry matches the link's own
            # accounting exactly — one sample per op, no double feed.
            health = system.obs.health.snapshot()["pbx-1"]
            snapshot = link.snapshot()
            assert health["link_ops"] == (
                snapshot["completed"] + snapshot["failed"]
            )
            assert health["link_errors"] == snapshot["failed"] == 1
            assert health["link_ops"] == 16
            # The stalled op's latency (>= the 50 ms pause) reached the
            # reservoir, so percentiles reflect queueing delay.
            assert health["latency"]["p99"] >= 0.04
        finally:
            system.close()


# -- backpressure: stalled link -> full lane -> ServerBusy at LTAP ----------


def add_descriptor(cn, ext):
    return UpdateDescriptor(
        op=UpdateOp.ADD,
        source="ldap",
        key=cn,
        new=person_image(cn, definityExtension=ext),
    )


def same_lane_extensions(system, count):
    """Extensions whose records the routing oracle puts on one lane."""
    queue = system.um.queue
    by_lane = {}
    for n in range(4100, 4500):
        ext = str(n)
        decision = queue.plan.classify(add_descriptor(f"E {ext}", ext))
        if decision.serial:
            continue
        label = queue.lane_of(decision.lane_key)
        by_lane.setdefault(label, []).append(ext)
        if len(by_lane[label]) >= count:
            return by_lane[label]
    raise AssertionError("no lane collision found in the probe range")


def lane_outstanding(system, label):
    for row in system.um.queue.lane_snapshot():
        if row["lane"] == label:
            return row["outstanding"]
    raise AssertionError(f"no lane {label}")


class TestBackpressure:
    def test_stalled_link_full_lane_rejects_with_server_busy(self):
        system = linked_fleet(
            1,
            coordinator_lanes=2,
            lane_depth_limit=2,
            link_window=1,
            link_batch=1,
        )
        clients = []
        link = system.links.link("pbx-1")
        try:
            e1, e2, e3 = same_lane_extensions(system, 3)
            queue = system.um.queue
            label = queue.lane_of(
                queue.plan.classify(add_descriptor(f"E {e1}", e1)).lane_key
            )
            link.pause()

            def add(ext):
                system.connection().add(
                    f"cn=E {ext},o=Lucent",
                    person_attrs(f"E {ext}", ext, definityExtension=ext),
                )

            # First update claims the lane and stalls in fan-out against
            # the paused link; the second claims behind it and waits at
            # the barrier.  The lane is now at its depth limit (2).
            for ext in (e1, e2):
                thread = threading.Thread(target=add, args=(ext,))
                thread.start()
                clients.append(thread)
                wait_until(
                    lambda want=len(clients): lane_outstanding(system, label)
                    >= want,
                    message=f"lane depth {len(clients)}",
                )

            # Third same-lane update: admission turns it away before any
            # directory write, typed as LDAP BUSY (51).
            with pytest.raises(LdapError) as excinfo:
                add(e3)
            assert excinfo.value.code is ResultCode.BUSY
            assert system.gateway.statistics["busy_rejected"] == 1
            assert dict(queue.statistics)["admission_rejected"] == 1

            # The backlog fires the queue-backlog alert.  The shipped rule
            # triggers at 5 s; re-declare it with a test-sized threshold so
            # the same expression fires from the same (real) staleness
            # gauge without a five-second stall.
            system.alerts.remove_rule("queue-backlog")
            system.alerts.add_rule(
                AlertRule.parse(
                    "queue-backlog",
                    "metacomm_queue_oldest_age_seconds > 0.05",
                    "oldest unclaimed update has waited too long",
                )
            )
            time.sleep(0.1)
            queue.refresh_staleness()
            system.alerts.evaluate()
            assert any(
                alert.rule == "queue-backlog"
                for alert in system.alerts.active()
            )

            rejected = system.obs.journal.events(UPDATE_REJECTED)
            assert len(rejected) == 1
            assert rejected[0].attributes["lane"] == label

            # Drain: resume the link, let both accepted updates finish.
            link.resume()
            for thread in clients:
                thread.join(timeout=30)
                assert not thread.is_alive()
            queue.refresh_staleness()
            system.alerts.evaluate()
            assert not system.alerts.active()

            # No update lost, none duplicated: the two accepted adds are
            # each on the device and in the directory exactly once, the
            # rejected one is nowhere — and the journal agrees.
            pbx = system.pbxes["pbx-1"]
            conn = system.connection()
            for ext in (e1, e2):
                assert pbx.contains(ext)
                assert conn.exists(f"cn=E {ext},o=Lucent")
            assert not pbx.contains(e3)
            assert not conn.exists(f"cn=E {e3},o=Lucent")
            assert pbx.statistics["adds"] == 2
            accepted = [
                str(event.attributes["key"])
                for event in system.obs.journal.events(UPDATE_ACCEPTED)
            ]
            assert len(accepted) == 2
            assert any(e1 in key for key in accepted)
            assert any(e2 in key for key in accepted)
            assert all(e3 not in key for key in accepted)
            assert e3 in str(rejected[0].attributes["key"])
        finally:
            link.resume()
            for thread in clients:
                thread.join(timeout=30)
            system.close()

    def test_defer_policy_waits_out_the_stall(self):
        system = linked_fleet(
            1,
            coordinator_lanes=2,
            lane_depth_limit=1,
            link_window=1,
            link_batch=1,
            busy_policy="defer",
            busy_timeout=10.0,
        )
        clients = []
        link = system.links.link("pbx-1")
        try:
            e1, e2 = same_lane_extensions(system, 2)
            queue = system.um.queue
            label = queue.lane_of(
                queue.plan.classify(add_descriptor(f"E {e1}", e1)).lane_key
            )
            link.pause()

            def add(ext):
                system.connection().add(
                    f"cn=E {ext},o=Lucent",
                    person_attrs(f"E {ext}", ext, definityExtension=ext),
                )

            first = threading.Thread(target=add, args=(e1,))
            first.start()
            clients.append(first)
            wait_until(
                lambda: lane_outstanding(system, label) >= 1,
                message="lane occupied",
            )

            second = threading.Thread(target=add, args=(e2,))
            second.start()
            clients.append(second)
            wait_until(
                lambda: dict(queue.statistics)["admission_deferred"] >= 1,
                message="deferred admission",
            )

            link.resume()
            for thread in clients:
                thread.join(timeout=30)
                assert not thread.is_alive()

            assert dict(queue.statistics)["admission_rejected"] == 0
            deferred = system.obs.journal.events(UPDATE_DEFERRED)
            assert any(
                e2 in str(event.attributes["key"]) for event in deferred
            )
            pbx = system.pbxes["pbx-1"]
            assert pbx.contains(e1) and pbx.contains(e2)
        finally:
            link.resume()
            for thread in clients:
                thread.join(timeout=30)
            system.close()
