"""Tests for the legacy device simulators."""

import pytest
from hypothesis import given, strategies as st

from repro.devices import (
    DefinityPbx,
    Device,
    DeviceUnavailableError,
    DuplicateRecordError,
    FieldSpec,
    InvalidFieldError,
    MessagingPlatform,
    NoSuchRecordError,
    OssiTerminal,
    partition_expression,
)


@pytest.fixture
def pbx():
    return DefinityPbx("pbx-mh", extension_prefixes=("4", "5"))


@pytest.fixture
def mp():
    return MessagingPlatform("mp-mh")


class TestGenericDevice:
    def test_unknown_field_rejected(self, pbx):
        with pytest.raises(InvalidFieldError):
            pbx.add({"Extension": "4100", "Frobnicator": "x"})

    def test_silent_truncation_weak_typing(self, pbx):
        record = pbx.add_station("4100", Name="X" * 100)
        assert len(record["Name"]) == 27  # Definity name field width

    def test_values_coerced_to_strings(self, pbx):
        record = pbx.add({"Extension": 4100, "COS": 1})
        assert record["Extension"] == "4100"
        assert record["COS"] == "1"

    def test_required_field_enforced_on_add(self):
        device = Device("d", "k", [FieldSpec("k", required=True), FieldSpec("v")])
        with pytest.raises(InvalidFieldError):
            device.add({"v": "only"})

    def test_duplicate_add_rejected(self, pbx):
        pbx.add_station("4100")
        with pytest.raises(DuplicateRecordError):
            pbx.add_station("4100")

    def test_modify_missing_rejected(self, pbx):
        with pytest.raises(NoSuchRecordError):
            pbx.change_station("4999", Name="X")

    def test_modify_is_atomic(self, pbx):
        pbx.add_station("4100", Name="A", Room="1")
        with pytest.raises(InvalidFieldError):
            pbx.change_station("4100", Room="2", COR="not-numeric")
        assert pbx.station("4100")["Room"] == "1"

    def test_modify_removes_field_with_none(self, pbx):
        pbx.add_station("4100", Room="1A")
        record = pbx.change_station("4100", Room=None)
        assert "Room" not in record

    def test_cannot_remove_key_field(self, pbx):
        pbx.add_station("4100")
        with pytest.raises(InvalidFieldError):
            pbx.change_station("4100", Extension=None)

    def test_key_change_rekeys_record(self, pbx):
        pbx.add_station("4100", Name="Mover")
        pbx.change_station("4100", Extension="4200")
        assert not pbx.contains("4100")
        assert pbx.station("4200")["Name"] == "Mover"

    def test_key_change_collision_rejected(self, pbx):
        pbx.add_station("4100")
        pbx.add_station("4200")
        with pytest.raises(DuplicateRecordError):
            pbx.change_station("4100", Extension="4200")

    def test_delete(self, pbx):
        pbx.add_station("4100")
        pbx.remove_station("4100")
        assert not pbx.contains("4100")
        with pytest.raises(NoSuchRecordError):
            pbx.remove_station("4100")

    def test_dump_and_size(self, pbx):
        for ext in ("4100", "4101", "4102"):
            pbx.add_station(ext)
        assert pbx.size() == 3
        assert {r["Extension"] for r in pbx.dump()} == {"4100", "4101", "4102"}

    def test_get_returns_copy(self, pbx):
        pbx.add_station("4100", Name="Orig")
        record = pbx.station("4100")
        record["Name"] = "Tampered"
        assert pbx.station("4100")["Name"] == "Orig"

    def test_unavailable_device_raises(self, pbx):
        pbx.add_station("4100")
        pbx.available = False
        with pytest.raises(DeviceUnavailableError):
            pbx.station("4100")
        with pytest.raises(DeviceUnavailableError):
            pbx.add_station("4101")
        pbx.available = True
        assert pbx.station("4100")

    def test_fault_injector(self, pbx):
        calls = []

        def boom(op, key):
            calls.append((op, key))
            raise InvalidFieldError("injected")

        pbx.fault_injector = boom
        with pytest.raises(InvalidFieldError):
            pbx.add_station("4100")
        assert calls == [("add", "4100")]
        assert pbx.size() == 0


class TestNotifications:
    def test_add_modify_delete_notify(self, pbx):
        seen = []
        pbx.add_listener(seen.append)
        pbx.add_station("4100", Name="A")
        pbx.change_station("4100", Name="B")
        pbx.remove_station("4100")
        assert [n.op for n in seen] == ["add", "modify", "delete"]
        assert seen[1].before["Name"] == "A"
        assert seen[1].after["Name"] == "B"
        assert seen[2].after is None

    def test_agent_identifies_session(self, pbx):
        seen = []
        pbx.add_listener(seen.append)
        pbx.add_station("4100", agent="craft")
        pbx.change_station("4100", agent="um", Name="X")
        assert [n.agent for n in seen] == ["craft", "um"]

    def test_failed_operation_does_not_notify(self, pbx):
        seen = []
        pbx.add_listener(seen.append)
        with pytest.raises(InvalidFieldError):
            pbx.add_station("9100")  # outside dial plan
        assert not seen

    def test_remove_listener(self, pbx):
        seen = []
        pbx.add_listener(seen.append)
        pbx.remove_listener(seen.append)
        pbx.add_station("4100")
        assert not seen


class TestDefinity:
    def test_dial_plan_enforced(self, pbx):
        with pytest.raises(InvalidFieldError):
            pbx.add_station("9100")
        pbx.add_station("5100")  # second prefix is fine

    def test_dial_plan_enforced_on_rekey(self, pbx):
        pbx.add_station("4100")
        with pytest.raises(InvalidFieldError):
            pbx.change_station("4100", Extension="9100")

    def test_extension_validation(self, pbx):
        with pytest.raises(InvalidFieldError):
            pbx.add_station("41")  # too short
        with pytest.raises(InvalidFieldError):
            pbx.add_station("41x0")

    def test_port_validation(self, pbx):
        pbx.add_station("4100", Port="01A0304")
        with pytest.raises(InvalidFieldError):
            pbx.add_station("4101", Port="bogus")

    def test_partition_expression(self, pbx):
        expr = partition_expression(pbx)
        assert 'prefix(Extension, "4")' in expr
        assert " or " in expr

    def test_manages_extension(self, pbx):
        assert pbx.manages_extension("4100")
        assert not pbx.manages_extension("9100")


class TestMessagingPlatform:
    def test_mailbox_id_generated_and_unique(self, mp):
        a = mp.add_subscriber("+1 908 582 4100")
        b = mp.add_subscriber("+1 908 582 4101")
        assert a["MailboxId"] != b["MailboxId"]
        assert a["MailboxId"].startswith("MB-")

    def test_generated_field_not_writable(self, mp):
        with pytest.raises(InvalidFieldError):
            mp.add({"TelephoneNumber": "+1", "MailboxId": "MB-999999"})
        mp.add_subscriber("+1 908 582 4100")
        with pytest.raises(InvalidFieldError):
            mp.change_subscriber("+1 908 582 4100", MailboxId="MB-000042")

    def test_mailbox_survives_modify(self, mp):
        record = mp.add_subscriber("+1 908 582 4100", SubscriberName="A")
        updated = mp.change_subscriber("+1 908 582 4100", SubscriberName="B")
        assert updated["MailboxId"] == record["MailboxId"]

    def test_pin_validation(self, mp):
        mp.add_subscriber("+1", PIN="1234")
        with pytest.raises(InvalidFieldError):
            mp.add_subscriber("+2", PIN="12")
        with pytest.raises(InvalidFieldError):
            mp.add_subscriber("+3", PIN="abcd")

    def test_mailbox_of(self, mp):
        record = mp.add_subscriber("+1 908 582 4100")
        assert mp.mailbox_of("+1 908 582 4100") == record["MailboxId"]


class TestOssiTerminal:
    @pytest.fixture
    def terminal(self, pbx):
        return OssiTerminal(pbx, login="craft")

    def test_add_and_display(self, terminal, pbx):
        response = terminal.execute('add station 4100 name "Doe, John" room 2B-110')
        assert response.ok
        assert "Doe, John" in response.text
        assert pbx.station("4100")["Room"] == "2B-110"

    def test_change(self, terminal, pbx):
        terminal.execute("add station 4100")
        response = terminal.execute('change station 4100 name "Lu, Jill" cos 2')
        assert response.ok
        assert pbx.station("4100")["COS"] == "2"

    def test_change_field_to_none_removes(self, terminal, pbx):
        terminal.execute("add station 4100 room 2B")
        terminal.execute("change station 4100 room none")
        assert "Room" not in pbx.station("4100")

    def test_remove(self, terminal, pbx):
        terminal.execute("add station 4100")
        response = terminal.execute("remove station 4100")
        assert response.ok
        assert not pbx.contains("4100")

    def test_list(self, terminal):
        terminal.execute('add station 4100 name "A"')
        terminal.execute('add station 4101 name "B"')
        response = terminal.execute("list station")
        assert response.ok
        assert "STATIONS: 2" in response.text
        assert "4100" in response.text and "4101" in response.text

    def test_legacy_error_codes(self, terminal):
        assert "?NO-RECORD" in terminal.execute("display station 4999").text
        terminal.execute("add station 4100")
        assert "?DUPLICATE" in terminal.execute("add station 4100").text
        assert "?IDENTIFIER" in terminal.execute("frob station 4100").text
        assert "?FIELD" in terminal.execute("add station 4101 bogus x").text
        assert "?SYNTAX" in terminal.execute('add station "unclosed').text

    def test_agent_is_login(self, terminal, pbx):
        seen = []
        pbx.add_listener(seen.append)
        terminal.execute("add station 4100")
        assert seen[0].agent == "craft"

    def test_history_kept(self, terminal):
        terminal.execute("list station")
        terminal.execute("display station 4100")
        assert len(terminal.history) == 2


@given(
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
        min_size=1,
        max_size=60,
    )
)
def test_name_field_never_exceeds_width(name):
    pbx = DefinityPbx(extension_prefixes=("4",))
    record = pbx.add_station("4100", Name=name)
    assert len(record["Name"]) <= 27


@given(st.lists(st.integers(min_value=4000, max_value=4999), min_size=1,
                max_size=20, unique=True))
def test_dump_round_trips_all_added_stations(extensions):
    pbx = DefinityPbx(extension_prefixes=("4",))
    for ext in extensions:
        pbx.add_station(str(ext))
    assert sorted(r["Extension"] for r in pbx.dump()) == sorted(
        str(e) for e in extensions
    )
