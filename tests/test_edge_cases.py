"""Edge-case tests sweeping the remaining less-travelled paths."""

import pytest

from repro.ldap import (
    DN,
    Entry,
    LdapConnection,
    LdapError,
    LdapServer,
    Modification,
    ResultCode,
    Scope,
)
from repro.ldap.protocol import LdapRequest
from repro.ltap import LtapGateway, Trigger, TriggerTiming


@pytest.fixture
def server():
    s = LdapServer(["o=L"])
    LdapConnection(s).add("o=L", {"objectClass": "organization", "o": "L"})
    return s


class TestGatewayEdges:
    def test_unknown_update_request_rejected(self, server):
        gateway = LtapGateway(server)

        class WeirdRequest(LdapRequest):
            def __init__(self):
                super().__post_init__()

        response = gateway.process(WeirdRequest())
        assert response.result.code is ResultCode.PROTOCOL_ERROR

    def test_before_trigger_sees_no_after_image(self, server):
        gateway = LtapGateway(server)
        seen = []
        gateway.register_trigger(
            Trigger(action=seen.append, timing=TriggerTiming.BEFORE)
        )
        LdapConnection(gateway).add(
            "cn=X,o=L", {"objectClass": "person", "cn": "X", "sn": "X"}
        )
        (event,) = seen
        assert event.after is None
        assert event.before is None  # add: nothing existed yet

    def test_trigger_on_rename_locks_old_dn(self, server):
        gateway = LtapGateway(server)
        conn = LdapConnection(gateway)
        conn.add("cn=X,o=L", {"objectClass": "person", "cn": "X", "sn": "X"})
        locked = []
        gateway.register_trigger(
            Trigger(
                action=lambda e: locked.append(
                    gateway.locks.is_locked(DN.parse("cn=X,o=L"))
                )
            )
        )
        conn.modify_rdn("cn=X,o=L", "cn=Y")
        assert locked == [True]

    def test_session_survives_failed_op(self, server):
        gateway = LtapGateway(server)
        conn = LdapConnection(gateway)
        conn.bind("cn=Directory Manager", "secret")
        with pytest.raises(LdapError):
            conn.delete("cn=Ghost,o=L")
        assert conn.session.authenticated
        assert gateway.locks.held_count() == 0


class TestServerEdges:
    def test_search_base_entry_projection_star(self, server):
        conn = LdapConnection(server)
        (entry,) = conn.search("o=L", Scope.BASE, attributes=["*"])
        assert entry.has("objectClass")

    def test_compare_on_operational_like_attr(self, server):
        conn = LdapConnection(server)
        assert not conn.compare("o=L", "description", "anything")

    def test_size_limit_not_triggered_at_exact_count(self, server):
        conn = LdapConnection(server)
        conn.add("cn=A,o=L", {"objectClass": "person", "cn": "A", "sn": "A"})
        hits = conn.search("o=L", Scope.SUB, "(objectClass=person)", size_limit=1)
        assert len(hits) == 1

    def test_root_dn_configurable(self):
        server = LdapServer(["o=L"], root_dn="cn=admin", root_password="pw")
        conn = LdapConnection(server)
        conn.bind("cn=admin", "pw")
        assert conn.session.authenticated


class TestDnEdges:
    def test_multi_ava_rdn_in_tree(self, server):
        conn = LdapConnection(server)
        conn.add(
            "cn=X+sn=Y,o=L", {"objectClass": "person", "cn": "X", "sn": "Y"}
        )
        entry = conn.get("sn=Y+cn=X,o=L")  # AVA order irrelevant
        assert entry.first("cn") == "X"

    def test_rdn_attribute_injection_on_multi_ava(self, server):
        conn = LdapConnection(server)
        conn.add("cn=A+sn=B,o=L", {"objectClass": "person"})
        entry = conn.get("cn=A+sn=B,o=L")
        assert entry.first("cn") == "A"
        assert entry.first("sn") == "B"

    def test_deep_nesting(self, server):
        conn = LdapConnection(server)
        parent = "o=L"
        for i in range(8):
            dn = f"ou=l{i},{parent}"
            conn.add(dn, {"objectClass": "organizationalUnit", "ou": f"l{i}"})
            parent = dn
        assert conn.exists(parent)
        hits = conn.search("o=L", Scope.SUB, "(ou=l7)")
        assert len(hits) == 1


class TestReplicationEdges:
    def test_changes_predating_registration_ship(self):
        from repro.ldap.replication import ReplicationEngine

        a = LdapServer(["o=L"], server_id="a")
        conn = LdapConnection(a)
        conn.add("o=L", {"objectClass": "organization", "o": "L"})
        conn.add("cn=Early,o=L", {"objectClass": "person", "cn": "Early", "sn": "E"})
        b = LdapServer(["o=L"], server_id="b")
        engine = ReplicationEngine()
        engine.connect(a, b)
        engine.propagate()
        assert LdapConnection(b).exists("cn=Early,o=L")

    def test_rename_then_modify_replicates_in_order(self):
        from repro.ldap.replication import ReplicationEngine

        a = LdapServer(["o=L"], server_id="a")
        b = LdapServer(["o=L"], server_id="b")
        for s in (a, b):
            LdapConnection(s).add("o=L", {"objectClass": ["top", "organization"], "o": "L"})
        engine = ReplicationEngine()
        engine.connect_mesh([a, b])
        engine.propagate()
        conn = LdapConnection(a)
        conn.add("cn=X,o=L", {"objectClass": "person", "cn": "X", "sn": "X"})
        conn.modify_rdn("cn=X,o=L", "cn=Y")
        conn.modify("cn=Y,o=L", [Modification.replace("sn", "Z")])
        engine.propagate()
        assert engine.converged()
        assert LdapConnection(b).get("cn=Y,o=L").first("sn") == "Z"


class TestNetCodecEdges:
    def test_encode_unknown_request_raises(self):
        from repro.ldap.net import encode_request

        class Strange(LdapRequest):
            def __init__(self):
                super().__post_init__()

        with pytest.raises(LdapError):
            encode_request(Strange())

    def test_decode_unknown_op_raises(self):
        from repro.ldap.net import decode_request

        with pytest.raises(LdapError):
            decode_request({"op": "frobnicate"})

    def test_response_round_trip_with_entries(self):
        from repro.ldap.net import decode_response, encode_response
        from repro.ldap.protocol import LdapResponse, LdapResult

        response = LdapResponse(
            LdapResult(ResultCode.SUCCESS),
            [Entry("cn=X,o=L", {"cn": "X", "mail": ["a@x", "b@x"]})],
        )
        again = decode_response(encode_response(response))
        assert again.result.ok
        assert again.entries[0].get("mail") == ["a@x", "b@x"]
