"""Extensibility: adding a brand-new data source without core changes.

Section 7: "MetaComm is a full-fledged and extensible mediator system ...
New data sources can be easily added.  The extensibility of MetaComm is
due mostly to its lexpress component."

We integrate a *call-accounting system* — a device type the core has never
heard of — using only public API: a Device subclass, a MappingSetBuilder
pair, a DeviceFilter and a DeviceBinding.  Updates then flow to and from
it exactly like the paper's PBX and MP.
"""

import pytest

from repro.core import DeviceBinding, DeviceFilter, MetaComm, MetaCommConfig
from repro.devices import Device, FieldSpec
from repro.ldap.schema import AttributeType
from repro.lexpress import MappingSetBuilder
from repro.schemas import PERSON_CLASSES


class CallAccounting(Device):
    """A third-party call-accounting box: account codes per extension."""

    def __init__(self, name: str = "callacct"):
        super().__init__(
            name,
            key_field="Ext",
            fields=(
                FieldSpec("Ext", max_length=5, required=True),
                FieldSpec("AcctCode", max_length=8),
                FieldSpec("Dept", max_length=12),
            ),
        )


def person_attrs(cn, sn, **extra):
    attrs = {"objectClass": list(PERSON_CLASSES), "cn": cn, "sn": sn}
    attrs.update(extra)
    return attrs


@pytest.fixture
def system():
    system = MetaComm(MetaCommConfig())
    # 1. New attributes for the integrated schema (unique names, 5.2).
    for name in ("caAccountCode", "caDepartment"):
        system.schema.define_attribute(AttributeType(name))
    # Loosen: the integrated personclasses don't list the new attrs; a real
    # deployment would add an auxiliary class.  Define one.
    from repro.ldap.schema import ClassKind, ObjectClass

    system.schema.define_class(
        ObjectClass(
            "callAccountingUser",
            kind=ClassKind.AUXILIARY,
            sup="top",
            may=("caAccountCode", "caDepartment"),
        )
    )

    # 2. The mapping pair, generated from one declaration (section 5.4's
    #    builder) and compiled at run time (section 4.2's dynamic add).
    forward, backward = (
        MappingSetBuilder("ca", "ldap")
        .key("Ext", "definityExtension")
        .originator("lastUpdater")
        .map("AcctCode", "caAccountCode")
        .map("Dept", "caDepartment")
        .partition(backward="present(Ext) and present(AcctCode)")
        .compile()
    )

    # 3. Wire the device in through public API only.
    device = CallAccounting()
    binding = DeviceBinding(
        filter=DeviceFilter(device, schema="ca"),
        to_ldap=forward,
        from_ldap=backward,
    )
    system.um.bindings.append(binding)
    binding.filter.on_ddu(system.um._on_ddu)
    system.um.closure = type(system.um.closure)(
        list(system.um.closure.mappings) + [forward, backward]
    )
    # 4. New person entries materialized from devices should carry the new
    #    auxiliary class too.
    system.ldap_filter.person_classes = tuple(
        list(system.ldap_filter.person_classes) + ["callAccountingUser"]
    )
    system.call_accounting = device
    return system


AUX_CLASSES = list(PERSON_CLASSES) + ["callAccountingUser"]


class TestNewDataSource:
    def test_ldap_add_provisions_new_device(self, system):
        conn = system.connection()
        conn.add(
            "cn=A B,o=Lucent",
            {
                "objectClass": AUX_CLASSES,
                "cn": "A B",
                "sn": "B",
                "definityExtension": "4100",
                "caAccountCode": "ACCT-42",
            },
        )
        record = system.call_accounting.get("4100")
        assert record["AcctCode"] == "ACCT-42"
        # The paper devices were provisioned too — nothing broke.
        assert system.pbx().contains("4100")
        assert system.messaging.size() == 1

    def test_new_device_ddu_reaches_directory(self, system):
        conn = system.connection()
        conn.add(
            "cn=A B,o=Lucent",
            {
                "objectClass": AUX_CLASSES,
                "cn": "A B", "sn": "B",
                "definityExtension": "4100",
                "caAccountCode": "ACCT-1",
            },
        )
        system.call_accounting.modify(
            "4100", {"Dept": "R&D"}, agent="vendor-tool"
        )
        entry = conn.get("cn=A B,o=Lucent")
        assert entry.first("caDepartment") == "R&D"
        assert entry.first("lastUpdater") == "callacct"

    def test_new_device_participates_in_reapply(self, system):
        system.connection().add(
            "cn=A B,o=Lucent",
            {
                "objectClass": AUX_CLASSES,
                "cn": "A B", "sn": "B",
                "definityExtension": "4100",
                "caAccountCode": "ACCT-1",
            },
        )
        binding = system.um.binding("callacct")
        before = binding.filter.statistics["conditional"]
        system.call_accounting.modify("4100", {"Dept": "Ops"}, agent="vendor")
        assert binding.filter.statistics["conditional"] > before

    def test_partition_keeps_non_subscribers_out(self, system):
        # No caAccountCode -> the partition predicate keeps the person off
        # the call-accounting box entirely.
        system.connection().add(
            "cn=NoAcct,o=Lucent",
            person_attrs("NoAcct", "N", definityExtension="4200"),
        )
        assert not system.call_accounting.contains("4200")
        assert system.pbx().contains("4200")

    def test_sync_covers_new_device(self, system):
        """The synchronization facility works for the new source unchanged."""
        system.call_accounting._records["4300"] = {
            "Ext": "4300", "AcctCode": "LEGACY-7",
        }
        report = system.sync.synchronize("callacct")
        assert report.added == 1
        (entry,) = system.find_person("(caAccountCode=LEGACY-7)")
        assert entry.first("definityExtension") == "4300"
