"""Tests for the paper's future-work features, implemented as extensions.

* saga-style compensation of device updates (section 4.4);
* the sophisticated security model (section 7) — LTAP ACLs;
* multi-entry single-site transactions (section 5.3);
* intra-entry constraints (section 5.3).
"""

import pytest

from repro.core import MetaComm, MetaCommConfig
from repro.devices import InvalidFieldError
from repro.ldap import (
    DN,
    Entry,
    LdapConnection,
    LdapError,
    LdapServer,
    Modification,
    NoSuchObjectError,
    ResultCode,
    Schema,
)
from repro.ldap.schema import AttributeType, ClassKind, ObjectClass
from repro.ltap import AccessControl, LtapGateway, Rights, Subject
from repro.schemas import PERSON_CLASSES


def person_attrs(cn, sn, **extra):
    attrs = {"objectClass": list(PERSON_CLASSES), "cn": cn, "sn": sn}
    attrs.update(extra)
    return attrs


class TestSagaCompensation:
    """Section 4.4: "use pre-update information to attempt to undo device
    updates, making the overall technique akin to sagas"."""

    @pytest.fixture
    def system(self):
        return MetaComm(MetaCommConfig(undo_on_failure=True))

    def test_add_compensated_when_later_device_fails(self, system):
        # PBX (first binding) succeeds, MP (second) fails: the PBX add
        # must be rolled back.
        system.messaging.fault_injector = lambda op, key: (_ for _ in ()).throw(
            InvalidFieldError("mp full")
        )
        system.connection().add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        assert not system.pbx().contains("4100")  # compensated
        assert system.um.statistics["compensated"] == 1
        assert len(system.error_log) == 1

    def test_modify_compensated(self, system):
        conn = system.connection()
        conn.add(
            "cn=A B,o=Lucent",
            person_attrs("A B", "B", definityExtension="4100", definityRoom="1A"),
        )
        system.messaging.fault_injector = lambda op, key: (_ for _ in ()).throw(
            InvalidFieldError("mp sick")
        )
        conn.modify(
            "cn=A B,o=Lucent",
            [
                Modification.replace("definityRoom", "9Z"),
                Modification.replace("mpCOS", "2"),
            ],
        )
        # The PBX modify was applied then undone.
        assert system.pbx().station("4100")["Room"] == "1A"
        assert system.um.statistics["compensated"] >= 1

    def test_delete_compensated(self, system):
        conn = system.connection()
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        system.messaging.fault_injector = lambda op, key: (_ for _ in ()).throw(
            InvalidFieldError("mp sick")
        )
        conn.delete("cn=A B,o=Lucent")
        # The PBX delete was applied, then the station re-added.
        assert system.pbx().contains("4100")
        assert system.um.statistics["compensated"] >= 1

    def test_without_saga_no_compensation(self):
        system = MetaComm(MetaCommConfig(undo_on_failure=False))
        system.messaging.fault_injector = lambda op, key: (_ for _ in ()).throw(
            InvalidFieldError("mp full")
        )
        system.connection().add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        # Classic section-4.4 behaviour: the PBX keeps the orphaned add
        # until an admin repairs it (that's what the error log is for).
        assert system.pbx().contains("4100")
        assert system.um.statistics["compensated"] == 0

    def test_compensation_failure_is_logged_not_raised(self, system):
        system.messaging.fault_injector = lambda op, key: (_ for _ in ()).throw(
            InvalidFieldError("mp full")
        )
        # Make the compensation itself fail too.
        original_compensate = system.um.bindings[0].filter.compensate

        def broken(update, before):
            raise RuntimeError("compensation path down")

        system.um.bindings[0].filter.compensate = broken
        system.connection().add(
            "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
        )
        targets = {e.first("metacommErrorTarget") for e in system.error_log.entries()}
        assert "messaging" in targets and "definity" in targets


class TestAccessControl:
    """Section 7: a richer security model for LTAP."""

    @pytest.fixture
    def secured(self):
        server = LdapServer(["o=Lucent"])
        acl = AccessControl(default_allow=False)
        acl.allow(Subject.ANYONE, rights=Rights.READ)
        acl.allow("cn=admin,o=Lucent", rights=Rights.ALL)
        acl.allow(
            Subject.SELF,
            rights=Rights.WRITE,
            attributes=("telephoneNumber", "description"),
        )
        acl.allow(
            subject_subtree="ou=helpdesk,o=Lucent",
            rights=Rights.WRITE,
            base="o=Staff,o=Lucent",
        )
        gateway = LtapGateway(server, access_control=acl)
        boot = LdapConnection(server)  # bypass ACL for fixture setup
        boot.add("o=Lucent", {"objectClass": "organization", "o": "Lucent"})
        boot.add("o=Staff,o=Lucent", {"objectClass": "organization", "o": "Staff"})
        boot.add(
            "ou=helpdesk,o=Lucent",
            {"objectClass": "organizationalUnit", "ou": "helpdesk"},
        )
        boot.add(
            "cn=admin,o=Lucent",
            {"objectClass": "person", "cn": "admin", "sn": "admin",
             "userPassword": "adminpw"},
        )
        boot.add(
            "cn=helper,ou=helpdesk,o=Lucent",
            {"objectClass": "person", "cn": "helper", "sn": "h",
             "userPassword": "helppw"},
        )
        boot.add(
            "cn=user,o=Staff,o=Lucent",
            {"objectClass": "person", "cn": "user", "sn": "u",
             "userPassword": "userpw"},
        )
        return gateway

    def test_anonymous_reads_allowed(self, secured):
        conn = LdapConnection(secured)
        assert conn.search("o=Lucent")

    def test_anonymous_write_denied(self, secured):
        conn = LdapConnection(secured)
        with pytest.raises(LdapError) as err:
            conn.add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X", "sn": "X"})
        assert err.value.code is ResultCode.INSUFFICIENT_ACCESS_RIGHTS

    def test_admin_writes_anywhere(self, secured):
        conn = LdapConnection(secured)
        conn.bind("cn=admin,o=Lucent", "adminpw")
        conn.add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X", "sn": "X"})
        conn.delete("cn=X,o=Lucent")

    def test_self_service_limited_to_granted_attributes(self, secured):
        conn = LdapConnection(secured)
        conn.bind("cn=user,o=Staff,o=Lucent", "userpw")
        conn.modify(
            "cn=user,o=Staff,o=Lucent",
            [Modification.replace("telephoneNumber", "+1 2")],
        )
        with pytest.raises(LdapError) as err:
            conn.modify(
                "cn=user,o=Staff,o=Lucent", [Modification.replace("sn", "hax")]
            )
        assert err.value.code is ResultCode.INSUFFICIENT_ACCESS_RIGHTS

    def test_self_service_only_own_entry(self, secured):
        conn = LdapConnection(secured)
        conn.bind("cn=user,o=Staff,o=Lucent", "userpw")
        with pytest.raises(LdapError):
            conn.modify(
                "cn=admin,o=Lucent",
                [Modification.replace("telephoneNumber", "+1 666")],
            )

    def test_helpdesk_scope(self, secured):
        conn = LdapConnection(secured)
        conn.bind("cn=helper,ou=helpdesk,o=Lucent", "helppw")
        conn.modify(
            "cn=user,o=Staff,o=Lucent", [Modification.replace("sn", "fixed")]
        )
        with pytest.raises(LdapError):
            conn.modify(
                "cn=admin,o=Lucent", [Modification.replace("sn", "nope")]
            )

    def test_deny_rule_first_match_wins(self):
        server = LdapServer(["o=L"])
        LdapConnection(server).add("o=L", {"objectClass": "organization", "o": "L"})
        acl = AccessControl(default_allow=True)
        acl.deny(Subject.ANONYMOUS, rights=Rights.READ, base="o=Secret,o=L")
        gateway = LtapGateway(server, access_control=acl)
        LdapConnection(server).add(
            "o=Secret,o=L", {"objectClass": "organization", "o": "Secret"}
        )
        conn = LdapConnection(gateway)
        assert conn.search("o=L", filter="(o=L)")  # default allow elsewhere
        with pytest.raises(LdapError):
            conn.search("o=Secret,o=L")

    def test_denied_write_never_fires_triggers(self, secured):
        fired = []
        from repro.ltap import Trigger

        secured.register_trigger(Trigger(action=fired.append))
        conn = LdapConnection(secured)
        with pytest.raises(LdapError):
            conn.add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X", "sn": "X"})
        assert not fired

    def test_statistics(self, secured):
        conn = LdapConnection(secured)
        conn.search("o=Lucent")
        with pytest.raises(LdapError):
            conn.delete("cn=admin,o=Lucent")
        assert secured.access_control.statistics["allowed"] >= 1
        assert secured.access_control.statistics["denied"] >= 1


class TestSiteTransactions:
    """Section 5.3: multi-entry atomicity at a single site."""

    @pytest.fixture
    def server(self):
        s = LdapServer(["o=L"])
        conn = LdapConnection(s)
        conn.add("o=L", {"objectClass": "organization", "o": "L"})
        conn.add("cn=P,o=L", {"objectClass": "person", "cn": "P", "sn": "P"})
        return s

    def test_commit_applies_all(self, server):
        with server.backend.transaction() as txn:
            txn.add(Entry("cn=A,o=L", {"objectClass": "person", "cn": "A", "sn": "A"}))
            txn.modify(DN.parse("cn=P,o=L"), [Modification.replace("sn", "Q")])
        assert server.backend.contains(DN.parse("cn=A,o=L"))
        assert server.get("cn=P,o=L").first("sn") == "Q"

    def test_failure_rolls_back_everything(self, server):
        size_before = server.backend.size()
        log_before = len(server.backend.changelog)
        with pytest.raises(NoSuchObjectError):
            with server.backend.transaction() as txn:
                txn.add(
                    Entry("cn=A,o=L", {"objectClass": "person", "cn": "A", "sn": "A"})
                )
                txn.delete(DN.parse("cn=Ghost,o=L"))  # fails
        assert server.backend.size() == size_before
        assert not server.backend.contains(DN.parse("cn=A,o=L"))
        assert len(server.backend.changelog) == log_before

    def test_listeners_see_nothing_on_rollback(self, server):
        seen = []
        server.backend.add_listener(seen.append)
        with pytest.raises(LdapError):
            with server.backend.transaction() as txn:
                txn.modify(DN.parse("cn=P,o=L"), [Modification.replace("sn", "X")])
                txn.modify(DN.parse("cn=Ghost,o=L"), [Modification.replace("sn", "Y")])
        assert seen == []
        assert server.get("cn=P,o=L").first("sn") == "P"

    def test_listeners_see_all_on_commit(self, server):
        seen = []
        server.backend.add_listener(seen.append)
        with server.backend.transaction() as txn:
            txn.add(Entry("cn=A,o=L", {"objectClass": "person", "cn": "A", "sn": "A"}))
            txn.add(Entry("cn=B,o=L", {"objectClass": "person", "cn": "B", "sn": "B"}))
        assert len(seen) == 2

    def test_atomic_rdn_plus_modify(self, server):
        """The exact section-5.1 pain point, made atomic: rename and
        attribute change commit together."""
        from repro.ldap import Rdn

        with server.backend.transaction() as txn:
            txn.modify_rdn(DN.parse("cn=P,o=L"), Rdn.parse("cn=P2"))
            txn.modify(
                DN.parse("cn=P2,o=L"), [Modification.replace("sn", "Renamed")]
            )
        entry = server.get("cn=P2,o=L")
        assert entry.first("sn") == "Renamed"

    def test_atomic_rdn_plus_modify_rollback(self, server):
        from repro.ldap import Rdn

        with pytest.raises(LdapError):
            with server.backend.transaction() as txn:
                txn.modify_rdn(DN.parse("cn=P,o=L"), Rdn.parse("cn=P2"))
                txn.modify(
                    DN.parse("cn=P2,o=L"), [Modification.delete("absent")]
                )
        assert server.backend.contains(DN.parse("cn=P,o=L"))
        assert not server.backend.contains(DN.parse("cn=P2,o=L"))

    def test_parent_child_pair(self, server):
        """The section-5.2 child-entry schema design becomes viable."""
        with server.backend.transaction() as txn:
            txn.add(
                Entry(
                    "cn=Dev,cn=P,o=L",
                    {"objectClass": "person", "cn": "Dev", "sn": "d"},
                )
            )
            txn.modify(DN.parse("cn=P,o=L"), [Modification.replace("sn", "HasDev")])
        assert server.backend.contains(DN.parse("cn=Dev,cn=P,o=L"))
        assert server.get("cn=P,o=L").first("sn") == "HasDev"

    def test_double_commit_rejected(self, server):
        txn = server.backend.transaction()
        txn.modify(DN.parse("cn=P,o=L"), [Modification.replace("sn", "Z")])
        txn.commit()
        with pytest.raises(RuntimeError):
            txn.commit()

    def test_empty_transaction_is_noop(self, server):
        with server.backend.transaction():
            pass
        assert server.get("cn=P,o=L").first("sn") == "P"


class TestIntraEntryConstraints:
    """Section 5.3: constraints over whole entries."""

    @pytest.fixture
    def schema(self):
        s = Schema()
        for name in ("cn", "sn", "definityExtension", "telephoneNumber"):
            s.define_attribute(AttributeType(name))
        s.define_class(ObjectClass("top", kind=ClassKind.ABSTRACT))
        s.define_class(
            ObjectClass(
                "person",
                sup="top",
                must=("cn", "sn"),
                may=("definityExtension", "telephoneNumber"),
            )
        )

        def phone_matches_extension(entry):
            ext = entry.first("definityExtension")
            phone = entry.first("telephoneNumber")
            if ext and phone and not phone.endswith(ext):
                return f"telephoneNumber {phone} does not end with extension {ext}"
            return None

        s.define_entry_constraint("phone-matches-extension", phone_matches_extension)
        return s

    def test_consistent_entry_passes(self, schema):
        schema.check_entry(
            Entry(
                "cn=A,o=L",
                {
                    "objectClass": "person", "cn": "A", "sn": "A",
                    "definityExtension": "4100",
                    "telephoneNumber": "+1 908 582 4100",
                },
            )
        )

    def test_violating_entry_rejected(self, schema):
        with pytest.raises(LdapError) as err:
            schema.check_entry(
                Entry(
                    "cn=A,o=L",
                    {
                        "objectClass": "person", "cn": "A", "sn": "A",
                        "definityExtension": "4100",
                        "telephoneNumber": "+1 908 582 9999",
                    },
                )
            )
        assert err.value.code is ResultCode.CONSTRAINT_VIOLATION

    def test_constraint_enforced_by_server(self, schema):
        server = LdapServer(["o=L"], schema=schema)
        conn = LdapConnection(server)
        # Build the suffix without schema checking (the minimal fixture
        # schema has no organization class), then re-enable it.
        server.backend.schema = None
        server.backend.add(Entry("o=L", {"objectClass": "organization", "o": "L"}))
        server.backend.schema = schema
        with pytest.raises(LdapError):
            conn.add(
                "cn=A,o=L",
                {
                    "objectClass": "person", "cn": "A", "sn": "A",
                    "definityExtension": "4100",
                    "telephoneNumber": "+1 999",
                },
            )

    def test_duplicate_constraint_name_rejected(self, schema):
        with pytest.raises(ValueError):
            schema.define_entry_constraint(
                "phone-matches-extension", lambda e: None
            )

    def test_remove_constraint(self, schema):
        schema.remove_entry_constraint("phone-matches-extension")
        schema.check_entry(
            Entry(
                "cn=A,o=L",
                {
                    "objectClass": "person", "cn": "A", "sn": "A",
                    "definityExtension": "4100",
                    "telephoneNumber": "+1 908 582 9999",
                },
            )
        )
