"""Tests for the commutativity-sharded multi-lane Update Manager:
the routing oracle (repro.analysis.routing), the sharded queue's barrier
protocol, the multi-lane coordinator pool, and the lanes=1 equivalence
guarantee (docs/CONCURRENCY.md)."""

import threading

import pytest

from repro.analysis import (
    InstanceBinding,
    SERIAL_REASONS,
    build_routing_plan,
)
from repro.core import (
    MetaComm,
    MetaCommConfig,
    PbxConfig,
    ShardedUpdateQueue,
    UpdateManager,
)
from repro.core.queue import SERIAL_LANE
from repro.lexpress import compile_description
from repro.lexpress.descriptor import UpdateDescriptor, UpdateOp
from repro.obs.events import (
    EventJournal,
    LANE_BARRIER,
    SAGA_COMPENSATED,
    UPDATE_ACCEPTED,
    UPDATE_CLAIMED,
)
from repro.schemas import PERSON_CLASSES


def person_attrs(cn, sn, **extra):
    attrs = {"objectClass": list(PERSON_CLASSES), "cn": cn, "sn": sn}
    attrs.update(extra)
    return attrs


def person_image(cn, **extra):
    image = {
        "objectClass": list(PERSON_CLASSES),
        "cn": [cn],
        "sn": [cn.split()[-1]],
    }
    image.update({k: [v] for k, v in extra.items()})
    return image


def add_descriptor(cn, **extra):
    return UpdateDescriptor(
        op=UpdateOp.ADD, source="ldap", key=cn, new=person_image(cn, **extra)
    )


# -- the routing oracle ------------------------------------------------------


class TestRoutingOracle:
    @pytest.fixture(scope="class")
    def plan(self):
        system = MetaComm(
            MetaCommConfig(
                pbxes=[
                    PbxConfig("pbx-west", ("41", "42")),
                    PbxConfig("pbx-east", ("43", "44")),
                ]
            )
        )
        try:
            yield build_routing_plan(system.analysis_target())
        finally:
            system.close()

    def test_disjoint_partitions_get_distinct_lane_keys(self, plan):
        west = plan.classify(add_descriptor("A B", definityExtension="4100"))
        east = plan.classify(add_descriptor("C D", definityExtension="4300"))
        assert not west.serial and not east.serial
        assert west.reason == "partition" and east.reason == "partition"
        assert west.lane_key != east.lane_key
        assert "pbx-west" in west.lane_key and "4100" in west.lane_key
        assert "pbx-east" in east.lane_key

    def test_same_record_shares_a_lane_key(self, plan):
        a = plan.classify(add_descriptor("A B", definityExtension="4100"))
        b = plan.classify(add_descriptor("A B2", definityExtension="4100"))
        assert a.lane_key == b.lane_key

    def test_lane_key_stable_between_add_and_modify(self, plan):
        # The ADD image carries no closure-derived telephoneNumber yet; a
        # later MODIFY of the same record does.  The canonical-group
        # priority (partitioned schemas first) must keep the key identical
        # or the two operations could land on different lanes and reorder.
        added = plan.classify(add_descriptor("A B", definityExtension="4100"))
        old = person_image(
            "A B", definityExtension="4100", telephoneNumber="+1 908 582 4100"
        )
        new = dict(old, definityRoom=["2B-110"])
        modified = plan.classify(
            UpdateDescriptor(
                op=UpdateOp.MODIFY, source="ldap", key="A B", old=old, new=new
            )
        )
        assert modified.lane_key == added.lane_key

    def test_delete_routes_by_the_old_image(self, plan):
        decision = plan.classify(
            UpdateDescriptor(
                op=UpdateOp.DELETE,
                source="ldap",
                key="A B",
                old=person_image("A B", definityExtension="4100"),
            )
        )
        assert not decision.serial
        assert "pbx-west" in decision.lane_key

    def test_cross_partition_move_is_serial(self, plan):
        decision = plan.classify(
            UpdateDescriptor(
                op=UpdateOp.MODIFY,
                source="ldap",
                key="A B",
                old=person_image("A B", definityExtension="4100"),
                new=person_image("A B", definityExtension="4300"),
            )
        )
        assert decision.serial
        assert decision.reason == "cross-partition-move"

    def test_ddu_reapplication_is_serial(self, plan):
        decision = plan.classify(
            UpdateDescriptor(
                op=UpdateOp.MODIFY,
                source="ldap",
                key="A B",
                old=person_image("A B", definityExtension="4100"),
                new=person_image(
                    "A B", definityExtension="4100", definityRoom="2B"
                ),
                origin="pbx-west",
            )
        )
        assert decision.serial
        assert decision.reason == "ddu-reapplication"

    def test_modify_rdn_is_serial(self, plan):
        decision = plan.classify(
            add_descriptor("A B", definityExtension="4100"), rename=True
        )
        assert decision.serial
        assert decision.reason == "modify-rdn"

    def test_unclaimed_record_is_serial(self, plan):
        # No extension and no phone: neither the PBX nor the messaging
        # partition claims the record, so nothing proves it disjoint.
        decision = plan.classify(add_descriptor("A B"))
        assert decision.serial
        assert decision.reason == "unclaimed"

    def test_shipped_configuration_has_no_conflict_attributes(self, plan):
        # The demo deployment's only LX403s are the suppressed lastUpdater
        # Originator findings — operator waivers, not serialization causes.
        assert plan.conflict_attributes == frozenset()

    def test_describe_is_json_friendly(self, plan):
        import json

        summary = plan.describe()
        json.dumps(summary)
        assert summary["source_schema"] == "ldap"
        assert summary["serial_reasons"] == list(SERIAL_REASONS)
        assert "pbx-west" in str(summary["instances"])


CONFLICTING = """
mapping ldap_to_west {
    source ldap;
    target dev;
    key devId -> Id;
    map Owner = "west";
    partition when prefix(Id, "42");
}
mapping ldap_to_east {
    source ldap;
    target dev;
    key devId -> Id;
    map Owner = "east";
    partition when prefix(Id, "43");
}
mapping ldap_to_all {
    source ldap;
    target dev;
    key devId -> Id;
    map Owner = upper(ownerName);
    partition when prefix(Id, "4");
}
"""


class TestConflictSerialization:
    """Unsuppressed LX403 findings must force serialization."""

    @pytest.fixture(scope="class")
    def plan(self):
        from repro.analysis import AnalysisTarget

        mappings = compile_description(CONFLICTING)
        target = AnalysisTarget(
            mappings=list(mappings.values()),
            instances=[InstanceBinding(m.name, m) for m in mappings.values()],
        )
        return build_routing_plan(target)

    def test_conflict_attributes_collected_from_active_lx403(self, plan):
        assert "owner" in plan.conflict_attributes
        # The upper(ownerName) rule's source dependency is entangled too.
        assert "ownername" in plan.conflict_attributes

    def test_touching_a_conflict_attribute_routes_serial(self, plan):
        decision = plan.classify(
            UpdateDescriptor(
                op=UpdateOp.MODIFY,
                source="ldap",
                key="r",
                old={"devId": ["4700"], "ownerName": ["ann"]},
                new={"devId": ["4700"], "ownerName": ["bob"]},
            )
        )
        assert decision.serial
        assert decision.reason == "non-commuting-write"

    def test_overlapping_claims_route_serial(self, plan):
        # 42xx keys satisfy both ldap_to_west and ldap_to_all: two
        # claimants in one target group means no disjointness proof.
        decision = plan.classify(
            UpdateDescriptor(
                op=UpdateOp.ADD, source="ldap", key="r", new={"devId": ["4200"]}
            )
        )
        assert decision.serial
        assert decision.reason == "partition-overlap"

    def test_uncontested_claim_still_gets_a_lane(self, plan):
        decision = plan.classify(
            UpdateDescriptor(
                op=UpdateOp.ADD, source="ldap", key="r", new={"devId": ["4500"]}
            )
        )
        assert not decision.serial
        assert "ldap_to_all:4500" == decision.lane_key


# -- the sharded queue and its barrier protocol ------------------------------


class ScriptedPlan:
    """A stand-in oracle: key "serial:<reason>" serializes, anything else
    becomes its own lane key."""

    def classify(self, descriptor, rename=False):
        from repro.analysis import LaneDecision

        key = descriptor.key or ""
        if rename:
            return LaneDecision(None, "modify-rdn")
        if key.startswith("serial:"):
            return LaneDecision(None, key.split(":", 1)[1])
        return LaneDecision(key, "partition")


def queue_descriptor(key):
    return UpdateDescriptor(
        op=UpdateOp.ADD, source="ldap", key=key, new={"cn": [key]}
    )


class TestShardedQueue:
    @pytest.fixture
    def queue(self):
        return ShardedUpdateQueue(ScriptedPlan(), lanes=3)

    def test_needs_at_least_one_lane(self):
        with pytest.raises(ValueError):
            ShardedUpdateQueue(ScriptedPlan(), lanes=0)

    def test_lane_assignment_is_deterministic(self, queue):
        assert queue.lane_of("k1") == queue.lane_of("k1")
        assert queue.lane_of(None) == SERIAL_LANE
        assert all(
            queue.lane_of(f"k{i}") in queue.labels[:-1] for i in range(20)
        )

    def test_claim_draws_one_global_serial_sequence(self, queue):
        serials = [
            queue.claim(queue_descriptor(f"k{i}")).serial for i in range(5)
        ]
        assert serials == [1, 2, 3, 4, 5]
        assert queue.last_serial == 5
        assert len(queue) == 5
        assert queue.peek_serial() == 1

    def test_head_of_lane_runs_immediately(self, queue):
        item = queue.claim(queue_descriptor("k1"))
        assert queue.wait_turn(item, timeout=0.1)
        queue.finish(item)
        assert len(queue) == 0

    def test_lane_fifo_blocks_the_second_item(self, queue):
        first = queue.claim(queue_descriptor("k1"))
        second = queue.claim(queue_descriptor("k1"))
        assert second.lane == first.lane
        assert not queue.wait_turn(second, timeout=0.05)
        assert queue.wait_turn(first, timeout=0.1)
        queue.finish(first)
        assert queue.wait_turn(second, timeout=0.5)
        queue.finish(second)

    def test_serial_item_waits_for_lane_quiescence(self, queue):
        lane_item = queue.claim(queue_descriptor("k1"))
        serial_item = queue.claim(queue_descriptor("serial:unclaimed"))
        later = queue.claim(queue_descriptor("k2"))
        assert serial_item.lane == SERIAL_LANE
        # The barrier: the serial item cannot run while an earlier lane
        # item is outstanding, and later lane items cannot overtake it.
        assert not queue.wait_turn(serial_item, timeout=0.05)
        assert not queue.wait_turn(later, timeout=0.05)
        assert queue.wait_turn(lane_item, timeout=0.1)
        queue.finish(lane_item)
        assert queue.wait_turn(serial_item, timeout=0.5)
        assert not queue.wait_turn(later, timeout=0.05)
        queue.finish(serial_item)
        assert queue.wait_turn(later, timeout=0.5)
        queue.finish(later)

    def test_stop_event_aborts_the_wait(self, queue):
        queue.claim(queue_descriptor("k1"))
        blocked = queue.claim(queue_descriptor("k1"))
        stop = threading.Event()
        stop.set()
        assert not queue.wait_turn(blocked, stop=stop, timeout=5.0)

    def test_abandoned_item_must_still_finish(self, queue):
        first = queue.claim(queue_descriptor("k1"))
        second = queue.claim(queue_descriptor("k1"))
        assert not queue.wait_turn(second, timeout=0.01)
        # Give up on `first` without running it: finish() alone must
        # unwedge the lane for the successor.
        queue.finish(first)
        assert queue.wait_turn(second, timeout=0.5)
        queue.finish(second)

    def test_statistics_count_serial_routing(self, queue):
        queue.claim(queue_descriptor("k1"))
        item = queue.claim(queue_descriptor("serial:unclaimed"))
        stats = dict(queue.statistics)
        assert stats["enqueued"] == 2
        assert stats["serial_routed"] == 1
        assert item.reason == "unclaimed"

    def test_lane_snapshot_shape(self, queue):
        queue.claim(queue_descriptor("k1"))
        snapshot = queue.lane_snapshot()
        assert [row["lane"] for row in snapshot] == list(queue.labels)
        assert sum(row["depth"] for row in snapshot) == 1
        assert all(
            set(row)
            == {
                "lane",
                "depth",
                "oldest_age",
                "last_serial",
                "outstanding",
                "limit",
            }
            for row in snapshot
        )

    def test_staleness_aggregates_the_worst_lane(self, queue):
        assert queue.refresh_staleness() == 0.0
        queue.claim(queue_descriptor("k1"))
        age = queue.refresh_staleness()
        assert age > 0.0
        assert queue.oldest_age() >= age

    def test_journal_events_carry_lane_labels(self):
        journal = EventJournal()
        queue = ShardedUpdateQueue(ScriptedPlan(), lanes=2, journal=journal)
        lane_item = queue.claim(queue_descriptor("k1"))
        serial_item = queue.claim(queue_descriptor("serial:unclaimed"))
        assert queue.wait_turn(lane_item, timeout=0.1)
        queue.finish(lane_item)
        assert queue.wait_turn(serial_item, timeout=0.5)
        queue.finish(serial_item)

        accepted = journal.events(UPDATE_ACCEPTED)
        assert [e.attributes["lane"] for e in accepted] == [
            lane_item.lane,
            SERIAL_LANE,
        ]
        assert accepted[1].attributes["reason"] == "unclaimed"
        claimed = journal.events(UPDATE_CLAIMED)
        assert {e.attributes["lane"] for e in claimed} == {
            lane_item.lane,
            SERIAL_LANE,
        }
        (barrier,) = journal.events(LANE_BARRIER)
        assert barrier.attributes["serial"] == serial_item.serial
        assert barrier.attributes["waited"] >= 0


# -- the multi-lane coordinator pool -----------------------------------------


def lane_fleet_config(lanes, **overrides):
    return MetaCommConfig(
        pbxes=[PbxConfig(f"pbx-{i}", (str(41 + i),)) for i in range(4)],
        coordinator_lanes=lanes,
        **overrides,
    )


class TestMultiLaneCoordinator:
    @pytest.fixture
    def fleet(self):
        fleet = MetaComm(lane_fleet_config(4))
        fleet.um.start()
        yield fleet
        fleet.close()

    def test_lanes_require_a_routing_plan(self):
        single = MetaComm(MetaCommConfig())
        try:
            with pytest.raises(ValueError, match="routing"):
                UpdateManager(
                    single.server,
                    single.gateway,
                    single.ldap_filter,
                    [],
                    single.error_log,
                    coordinator_lanes=2,
                )
        finally:
            single.close()

    def test_queue_class_follows_the_lane_count(self, fleet):
        assert fleet.um.sharded
        assert isinstance(fleet.um.queue, ShardedUpdateQueue)
        single = MetaComm(lane_fleet_config(1))
        try:
            assert not single.um.sharded
            assert not isinstance(single.um.queue, ShardedUpdateQueue)
        finally:
            single.close()

    def test_concurrent_disjoint_clients_stay_consistent(self, fleet):
        errors = []

        def client(i):
            try:
                conn = fleet.connection()
                for j in range(4):
                    conn.add(
                        f"cn=U{i}-{j},o=Lucent",
                        person_attrs(
                            f"U{i}-{j}", "U",
                            definityExtension=f"{41 + i}{j:02d}",
                        ),
                    )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert all(p.size() == 4 for p in fleet.pbxes.values())
        assert fleet.messaging.size() == 16
        assert fleet.consistent()
        stats = dict(fleet.um.queue.statistics)
        assert stats["enqueued"] == stats["processed"] == 16
        assert stats["serial_routed"] == 0

    def test_ddu_drains_through_the_serial_lane(self, fleet):
        fleet.connection().add(
            "cn=A B,o=Lucent", person_attrs("A B", "B",
                                            definityExtension="4100")
        )
        fleet.terminal("pbx-0").execute("change station 4100 room 2B-110")
        (entry,) = fleet.find_person("(definityExtension=4100)")
        assert entry.get("definityRoom") == ["2B-110"]
        assert fleet.consistent()
        assert dict(fleet.um.queue.statistics)["serial_routed"] >= 1
        barrier_events = fleet.obs.journal.events(LANE_BARRIER)
        assert barrier_events
        assert all(
            e.attributes["lane"] == SERIAL_LANE for e in barrier_events
        )

    def test_lane_metrics_are_exported(self, fleet):
        fleet.connection().add(
            "cn=A B,o=Lucent", person_attrs("A B", "B",
                                            definityExtension="4100")
        )
        text = fleet.metrics_text()
        assert "metacomm_queue_lane_enqueued_total" in text
        assert 'lane="serial"' in text
        assert "metacomm_queue_lane_depth" in text

    def test_sync_mode_clients_drive_their_own_lanes(self):
        # Without um.start() the client threads are the lane workers:
        # claim/wait_turn/finish run inline on the calling thread.
        fleet = MetaComm(lane_fleet_config(4))
        try:
            assert fleet.um.sharded and not fleet.um.threaded
            errors = []

            def client(i):
                try:
                    fleet.connection().add(
                        f"cn=U{i},o=Lucent",
                        person_attrs(
                            f"U{i}", "U", definityExtension=f"{41 + i}00"
                        ),
                    )
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            assert fleet.consistent()
        finally:
            fleet.close()

    def test_rename_routes_serial_and_reaches_the_device(self, fleet):
        conn = fleet.connection()
        conn.add(
            "cn=A B,o=Lucent", person_attrs("A B", "B",
                                            definityExtension="4100")
        )
        before = dict(fleet.um.queue.statistics)["serial_routed"]
        conn.modify_rdn("cn=A B,o=Lucent", "cn=A C")
        assert dict(fleet.um.queue.statistics)["serial_routed"] == before + 1
        assert fleet.pbxes["pbx-0"].get("4100")["Name"] == "C, A"


# -- lanes=1 must be byte-identical with the paper-serial path ---------------


def failure_workload(fleet):
    """The TestFanoutModes abort scenario: pbx-1 poisoned, one add that
    fails mid-fan-out, then one successful add."""
    from repro.devices import InvalidFieldError

    def explode(op, key):
        raise InvalidFieldError("injected fault")

    fleet.pbxes["pbx-1"].fault_injector = explode
    fleet.connection().add(
        "cn=A B,o=Lucent", person_attrs("A B", "B", definityExtension="4100")
    )
    fleet.pbxes["pbx-1"].fault_injector = None
    fleet.connection().add(
        "cn=C D,o=Lucent", person_attrs("C D", "D", definityExtension="4200")
    )


def error_records(fleet):
    return [
        (str(entry.dn), sorted((k, tuple(v)) for k, v in
                               entry.attributes.items()))
        for entry in fleet.error_log.entries()
    ]


def saga_order(fleet):
    return [
        (e.attributes.get("device"), e.attributes.get("serial"))
        for e in fleet.obs.journal.events(SAGA_COMPENSATED)
    ]


class TestSingleLaneEquivalence:
    def test_error_log_and_saga_order_match_serial_mode(self):
        config = dict(
            pbxes=[PbxConfig(f"pbx-{i}", ("4",)) for i in range(3)],
            undo_on_failure=True,
        )
        serial = MetaComm(MetaCommConfig(**config))
        threaded = MetaComm(MetaCommConfig(**config, coordinator_lanes=1))
        threaded.um.start()
        try:
            failure_workload(serial)
            failure_workload(threaded)
            assert error_records(serial) == error_records(threaded)
            assert saga_order(serial) == saga_order(threaded)
            # The abort scenario leaves the same (in)consistency verdict
            # either way — lanes=1 changes nothing observable.
            assert serial.consistent() == threaded.consistent()
            assert (
                serial.um.queue.last_serial == threaded.um.queue.last_serial
            )
        finally:
            serial.close()
            threaded.close()
