"""Tests for the DIT backend: tree maintenance, atomic ops, changelog."""

import pytest

from repro.ldap import (
    DN,
    ChangeType,
    Entry,
    EntryAlreadyExistsError,
    LdapError,
    Modification,
    NoSuchObjectError,
    Rdn,
    ResultCode,
    Scope,
)
from repro.ldap.backend import Backend


@pytest.fixture
def backend():
    b = Backend(["o=Lucent"])
    b.add(Entry("o=Lucent", {"objectClass": "organization", "o": "Lucent"}))
    b.add(Entry("o=Marketing,o=Lucent", {"objectClass": "organization", "o": "Marketing"}))
    b.add(Entry("o=R&D,o=Lucent", {"objectClass": "organization", "o": "R&D"}))
    b.add(
        Entry(
            "cn=John Doe,o=Marketing,o=Lucent",
            {"objectClass": "person", "cn": "John Doe", "sn": "Doe",
             "telephoneNumber": "+1 908 582 9000"},
        )
    )
    return b


class TestAdd:
    def test_add_under_existing_parent(self, backend):
        backend.add(Entry("cn=Pat,o=Marketing,o=Lucent", {"objectClass": "person", "cn": "Pat"}))
        assert backend.contains(DN.parse("cn=Pat,o=Marketing,o=Lucent"))

    def test_add_duplicate_rejected(self, backend):
        with pytest.raises(EntryAlreadyExistsError):
            backend.add(Entry("cn=John Doe,o=Marketing,o=Lucent", {"objectClass": "person", "cn": "John Doe"}))

    def test_add_orphan_rejected(self, backend):
        with pytest.raises(NoSuchObjectError) as err:
            backend.add(Entry("cn=X,o=Void,o=Lucent", {"objectClass": "person", "cn": "X"}))
        assert err.value.matched_dn.lower() == "o=lucent"

    def test_add_outside_namespace_rejected(self, backend):
        with pytest.raises(LdapError) as err:
            backend.add(Entry("o=Elsewhere", {"objectClass": "organization", "o": "Elsewhere"}))
        assert err.value.code is ResultCode.UNWILLING_TO_PERFORM

    def test_add_injects_rdn_attributes(self, backend):
        backend.add(Entry("cn=NoAttrs,o=Lucent", {"objectClass": "person"}))
        assert backend.get(DN.parse("cn=NoAttrs,o=Lucent")).first("cn") == "NoAttrs"

    def test_stored_entry_isolated_from_caller(self, backend):
        entry = Entry("cn=Iso,o=Lucent", {"objectClass": "person", "cn": "Iso"})
        backend.add(entry)
        entry.attributes.put("cn", "Mutated")
        assert backend.get(DN.parse("cn=Iso,o=Lucent")).first("cn") == "Iso"


class TestDelete:
    def test_delete_leaf(self, backend):
        dn = DN.parse("cn=John Doe,o=Marketing,o=Lucent")
        backend.delete(dn)
        assert not backend.contains(dn)

    def test_delete_non_leaf_rejected(self, backend):
        with pytest.raises(LdapError) as err:
            backend.delete(DN.parse("o=Marketing,o=Lucent"))
        assert err.value.code is ResultCode.NOT_ALLOWED_ON_NON_LEAF

    def test_delete_missing_rejected(self, backend):
        with pytest.raises(NoSuchObjectError):
            backend.delete(DN.parse("cn=Ghost,o=Lucent"))

    def test_delete_then_parent_becomes_leaf(self, backend):
        backend.delete(DN.parse("cn=John Doe,o=Marketing,o=Lucent"))
        backend.delete(DN.parse("o=Marketing,o=Lucent"))
        assert not backend.contains(DN.parse("o=Marketing,o=Lucent"))


class TestModify:
    DN_JOHN = DN.parse("cn=John Doe,o=Marketing,o=Lucent")

    def test_replace(self, backend):
        backend.modify(self.DN_JOHN, [Modification.replace("telephoneNumber", "+1 908 582 9111")])
        assert backend.get(self.DN_JOHN).first("telephoneNumber") == "+1 908 582 9111"

    def test_add_value(self, backend):
        backend.modify(self.DN_JOHN, [Modification.add("mail", "jdoe@lucent.com")])
        assert backend.get(self.DN_JOHN).get("mail") == ["jdoe@lucent.com"]

    def test_delete_attribute(self, backend):
        backend.modify(self.DN_JOHN, [Modification.delete("telephoneNumber")])
        assert not backend.get(self.DN_JOHN).has("telephoneNumber")

    def test_modify_is_atomic_on_error(self, backend):
        # Second modification fails; the first must not be applied.
        with pytest.raises(LdapError):
            backend.modify(
                self.DN_JOHN,
                [
                    Modification.replace("telephoneNumber", "+1 000"),
                    Modification.delete("absentAttr"),
                ],
            )
        assert backend.get(self.DN_JOHN).first("telephoneNumber") == "+1 908 582 9000"

    def test_cannot_remove_rdn_value(self, backend):
        with pytest.raises(LdapError) as err:
            backend.modify(self.DN_JOHN, [Modification.delete("cn")])
        assert err.value.code is ResultCode.NOT_ALLOWED_ON_RDN

    def test_can_add_second_value_to_rdn_attribute(self, backend):
        backend.modify(self.DN_JOHN, [Modification.add("cn", "Johnny Doe")])
        assert set(backend.get(self.DN_JOHN).get("cn")) == {"John Doe", "Johnny Doe"}


class TestModifyRdn:
    DN_JOHN = DN.parse("cn=John Doe,o=Marketing,o=Lucent")

    def test_rename_leaf(self, backend):
        backend.modify_rdn(self.DN_JOHN, Rdn.parse("cn=John Q Doe"))
        new_dn = DN.parse("cn=John Q Doe,o=Marketing,o=Lucent")
        assert backend.contains(new_dn)
        assert not backend.contains(self.DN_JOHN)
        entry = backend.get(new_dn)
        assert entry.get("cn") == ["John Q Doe"]
        assert entry.first("telephoneNumber") == "+1 908 582 9000"

    def test_rename_keeps_old_value_when_not_deleting(self, backend):
        backend.modify_rdn(self.DN_JOHN, Rdn.parse("cn=JQD"), delete_old_rdn=False)
        entry = backend.get(DN.parse("cn=JQD,o=Marketing,o=Lucent"))
        assert set(entry.get("cn")) == {"John Doe", "JQD"}

    def test_rename_to_existing_rejected(self, backend):
        backend.add(Entry("cn=Pat,o=Marketing,o=Lucent", {"objectClass": "person", "cn": "Pat"}))
        with pytest.raises(EntryAlreadyExistsError):
            backend.modify_rdn(self.DN_JOHN, Rdn.parse("cn=Pat"))

    def test_rename_suffix_rejected(self, backend):
        with pytest.raises(LdapError):
            backend.modify_rdn(DN.parse("o=Lucent"), Rdn.parse("o=NewCo"))

    def test_rename_interior_rekeys_subtree(self, backend):
        backend.modify_rdn(DN.parse("o=Marketing,o=Lucent"), Rdn.parse("o=Sales"))
        moved = DN.parse("cn=John Doe,o=Sales,o=Lucent")
        assert backend.contains(moved)
        assert not backend.contains(self.DN_JOHN)
        # Children index survives: deleting the moved child then the parent works.
        backend.delete(moved)
        backend.delete(DN.parse("o=Sales,o=Lucent"))

    def test_rename_noop_same_rdn(self, backend):
        backend.modify_rdn(self.DN_JOHN, Rdn.parse("cn=John Doe"))
        assert backend.contains(self.DN_JOHN)


class TestSearch:
    def test_base_scope(self, backend):
        hits = backend.search(DN.parse("o=Lucent"), Scope.BASE)
        assert [str(e.dn) for e in hits] == ["o=Lucent"]

    def test_one_scope(self, backend):
        hits = backend.search(DN.parse("o=Lucent"), Scope.ONE)
        assert {e.first("o") for e in hits} == {"Marketing", "R&D"}

    def test_sub_scope_includes_base(self, backend):
        hits = backend.search(DN.parse("o=Lucent"), Scope.SUB)
        assert len(hits) == 4

    def test_filtering(self, backend):
        hits = backend.search(DN.parse("o=Lucent"), Scope.SUB, "(objectClass=person)")
        assert [e.first("cn") for e in hits] == ["John Doe"]

    def test_attribute_projection(self, backend):
        hits = backend.search(
            DN.parse("o=Lucent"), Scope.SUB, "(cn=John Doe)", attributes=["sn"]
        )
        (entry,) = hits
        assert entry.has("sn")
        assert not entry.has("telephoneNumber")

    def test_size_limit(self, backend):
        with pytest.raises(LdapError) as err:
            backend.search(DN.parse("o=Lucent"), Scope.SUB, size_limit=2)
        assert err.value.code is ResultCode.SIZE_LIMIT_EXCEEDED

    def test_search_missing_base(self, backend):
        with pytest.raises(NoSuchObjectError):
            backend.search(DN.parse("o=Ghost,o=Lucent"))

    def test_results_are_copies(self, backend):
        (hit,) = backend.search(DN.parse("o=Lucent"), Scope.SUB, "(cn=John Doe)")
        hit.attributes.put("cn", "Tampered")
        assert backend.get(hit.dn).first("cn") == "John Doe"


class TestChangelogAndListeners:
    def test_changelog_records_all_ops(self, backend):
        start = len(backend.changelog)
        dn = DN.parse("cn=T,o=Lucent")
        backend.add(Entry(dn, {"objectClass": "person", "cn": "T"}))
        backend.modify(dn, [Modification.replace("sn", "X")])
        backend.modify_rdn(dn, Rdn.parse("cn=T2"))
        backend.delete(DN.parse("cn=T2,o=Lucent"))
        kinds = [r.change_type for r in backend.changelog[start:]]
        assert kinds == [
            ChangeType.ADD,
            ChangeType.MODIFY,
            ChangeType.MODIFY_RDN,
            ChangeType.DELETE,
        ]

    def test_csns_strictly_increase(self, backend):
        csns = [r.csn for r in backend.changelog]
        assert all(a < b for a, b in zip(csns, csns[1:]))

    def test_listener_sees_before_and_after(self, backend):
        seen = []
        backend.add_listener(seen.append)
        dn = DN.parse("cn=John Doe,o=Marketing,o=Lucent")
        backend.modify(dn, [Modification.replace("telephoneNumber", "+1 1")])
        (record,) = seen
        assert record.before.first("telephoneNumber") == "+1 908 582 9000"
        assert record.after.first("telephoneNumber") == "+1 1"

    def test_remove_listener(self, backend):
        seen = []
        backend.add_listener(seen.append)
        backend.remove_listener(seen.append)
        backend.modify(
            DN.parse("cn=John Doe,o=Marketing,o=Lucent"),
            [Modification.replace("sn", "D")],
        )
        assert not seen

    def test_failed_op_not_logged(self, backend):
        start = len(backend.changelog)
        with pytest.raises(NoSuchObjectError):
            backend.delete(DN.parse("cn=Ghost,o=Lucent"))
        assert len(backend.changelog) == start

    def test_changes_since(self, backend):
        mid = backend.changelog[-1].csn
        backend.add(Entry("cn=After,o=Lucent", {"objectClass": "person", "cn": "After"}))
        tail = backend.changes_since(mid)
        assert len(tail) == 1
        assert tail[0].dn == DN.parse("cn=After,o=Lucent")
        assert len(backend.changes_since(None)) == len(backend.changelog)
