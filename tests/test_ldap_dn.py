"""Tests for DN/RDN parsing, normalization and tree relations."""

import pytest
from hypothesis import given, strategies as st

from repro.ldap import DN, Ava, InvalidDnError, Rdn
from repro.ldap.dn import escape_value


class TestRdn:
    def test_parse_single_ava(self):
        rdn = Rdn.parse("cn=John Doe")
        assert rdn.attribute == "cn"
        assert rdn.value == "John Doe"

    def test_parse_multi_ava(self):
        rdn = Rdn.parse("cn=John Doe+telephoneNumber=1234")
        assert len(rdn.avas) == 2
        assert dict(rdn.items()) == {"cn": "John Doe", "telephoneNumber": "1234"}

    def test_equality_is_case_insensitive(self):
        assert Rdn.parse("CN=John Doe") == Rdn.parse("cn=john doe")

    def test_equality_ignores_ava_order(self):
        assert Rdn.parse("a=1+b=2") == Rdn.parse("b=2+a=1")

    def test_hashable(self):
        assert len({Rdn.parse("cn=A"), Rdn.parse("CN=a"), Rdn.parse("cn=B")}) == 2

    def test_empty_rdn_rejected(self):
        with pytest.raises(InvalidDnError):
            Rdn.parse("")

    def test_missing_value_rejected(self):
        with pytest.raises(InvalidDnError):
            Rdn.parse("cn=")

    def test_missing_equals_rejected(self):
        with pytest.raises(InvalidDnError):
            Rdn.parse("cn")

    def test_str_round_trip(self):
        rdn = Rdn.parse("cn=John Doe")
        assert Rdn.parse(str(rdn)) == rdn


class TestDn:
    def test_parse_paper_example(self):
        # The exact DN from Figure 2 of the paper.
        dn = DN.parse("cn=John Doe, o=Marketing, o=Lucent")
        assert len(dn) == 3
        assert dn.rdn.value == "John Doe"
        assert str(dn.parent()) == "o=Marketing,o=Lucent"

    def test_leaf_to_root_order(self):
        dn = DN.parse("cn=X,o=Y")
        assert dn.rdns[0].attribute == "cn"
        assert dn.rdns[1].attribute == "o"

    def test_root(self):
        root = DN.root()
        assert root.is_root()
        assert len(root) == 0
        with pytest.raises(InvalidDnError):
            root.parent()
        with pytest.raises(InvalidDnError):
            root.rdn

    def test_child(self):
        base = DN.parse("o=Lucent")
        child = base.child("o=Marketing")
        assert str(child) == "o=Marketing,o=Lucent"

    def test_descendant_relations(self):
        base = DN.parse("o=Lucent")
        person = DN.parse("cn=John Doe,o=Marketing,o=Lucent")
        assert person.is_descendant_of(base)
        assert person.is_under(base)
        assert not base.is_descendant_of(person)
        assert base.is_under(base)
        assert not base.is_descendant_of(base)

    def test_descendant_requires_suffix_match(self):
        assert not DN.parse("cn=A,o=Other").is_descendant_of(DN.parse("o=Lucent"))

    def test_depth_below(self):
        base = DN.parse("o=Lucent")
        person = DN.parse("cn=J,o=M,o=Lucent")
        assert person.depth_below(base) == 2
        assert base.depth_below(base) == 0
        with pytest.raises(ValueError):
            DN.parse("o=Other").depth_below(base)

    def test_case_insensitive_equality(self):
        assert DN.parse("CN=John,O=Lucent") == DN.parse("cn=john, o=lucent")

    def test_whitespace_insensitive(self):
        assert DN.parse("cn=John Doe,o=Lucent") == DN.parse("cn=John  Doe , o=Lucent")

    def test_escaped_comma_in_value(self):
        dn = DN.parse(r"cn=Doe\, John,o=Lucent")
        assert dn.rdn.value == "Doe, John"
        assert len(dn) == 2

    def test_escaped_plus(self):
        rdn = Rdn.parse(r"cn=a\+b")
        assert rdn.value == "a+b"
        assert len(rdn.avas) == 1

    def test_dangling_escape_rejected(self):
        with pytest.raises(InvalidDnError):
            DN.parse("cn=x\\")

    def test_str_round_trip_with_escapes(self):
        dn = DN([Rdn.single("cn", "Doe, John+Jr")]).child("ou=A,B")
        assert DN.parse(str(dn)) == dn


class TestEscaping:
    def test_escape_special_characters(self):
        assert escape_value("a,b") == r"a\,b"
        assert escape_value("a+b") == r"a\+b"
        assert escape_value("a\\b") == "a\\\\b"

    def test_escape_leading_trailing_space(self):
        assert escape_value(" x ") == r"\ x\ "

    @given(st.text(alphabet=st.characters(codec="ascii"), min_size=1).map(str.strip).filter(bool))
    def test_escape_round_trips_through_parse(self, value):
        rdn = Rdn([Ava("cn", value)])
        assert Rdn.parse(str(rdn)) == rdn


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["cn", "ou", "o", "dc"]),
            st.text(
                alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
                min_size=1,
            ).map(lambda s: " ".join(s.split())).filter(bool),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_dn_parse_str_round_trip(parts):
    dn = DN([Rdn([Ava(a, v)]) for a, v in parts])
    assert DN.parse(str(dn)) == dn
    assert DN.parse(str(dn)).normalized() == dn.normalized()
