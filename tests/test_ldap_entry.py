"""Tests for attribute collections and entries."""

import pytest
from hypothesis import given, strategies as st

from repro.ldap import Attributes, Entry, LdapError, ResultCode


class TestAttributes:
    def test_put_and_get(self):
        attrs = Attributes()
        attrs.put("cn", "John Doe")
        assert attrs.get("cn") == ["John Doe"]
        assert attrs.get("CN") == ["John Doe"]

    def test_put_list(self):
        attrs = Attributes({"mail": ["a@x.com", "b@x.com"]})
        assert attrs.get("mail") == ["a@x.com", "b@x.com"]

    def test_put_empty_removes(self):
        attrs = Attributes({"cn": "x"})
        attrs.put("cn", [])
        assert not attrs.has("cn")

    def test_first(self):
        attrs = Attributes({"mail": ["a@x.com", "b@x.com"]})
        assert attrs.first("mail") == "a@x.com"
        assert attrs.first("absent") is None
        assert attrs.first("absent", "dflt") == "dflt"

    def test_case_preserved_from_first_writer(self):
        attrs = Attributes()
        attrs.put("telephoneNumber", "1")
        attrs.put("TELEPHONENUMBER", "2")
        assert attrs.names() == ["telephoneNumber"]
        assert attrs.get("telephonenumber") == ["2"]

    def test_add_values_rejects_duplicates(self):
        attrs = Attributes({"cn": "John"})
        with pytest.raises(LdapError) as err:
            attrs.add_values("cn", "JOHN")
        assert err.value.code is ResultCode.ATTRIBUTE_OR_VALUE_EXISTS

    def test_add_values_appends(self):
        attrs = Attributes({"cn": "John"})
        attrs.add_values("cn", ["Johnny"])
        assert attrs.get("cn") == ["John", "Johnny"]

    def test_delete_specific_value(self):
        attrs = Attributes({"mail": ["a@x", "b@x"]})
        attrs.delete_values("mail", "a@x")
        assert attrs.get("mail") == ["b@x"]

    def test_delete_last_value_removes_attribute(self):
        attrs = Attributes({"mail": "a@x"})
        attrs.delete_values("mail", "a@x")
        assert not attrs.has("mail")

    def test_delete_whole_attribute(self):
        attrs = Attributes({"mail": ["a@x", "b@x"]})
        attrs.delete_values("mail", None)
        assert not attrs.has("mail")

    def test_delete_missing_attribute_raises(self):
        with pytest.raises(LdapError):
            Attributes().delete_values("mail", None)

    def test_delete_missing_value_raises(self):
        with pytest.raises(LdapError):
            Attributes({"mail": "a@x"}).delete_values("mail", "zzz")

    def test_has_value_case_insensitive(self):
        attrs = Attributes({"cn": "John Doe"})
        assert attrs.has_value("cn", "john  doe")
        assert not attrs.has_value("cn", "jane doe")

    def test_equality_ignores_case_and_order(self):
        a = Attributes({"cn": ["X", "Y"]})
        b = Attributes({"CN": ["y", "x"]})
        assert a == b

    def test_copy_is_deep(self):
        a = Attributes({"cn": "x"})
        b = a.copy()
        b.put("cn", "y")
        assert a.get("cn") == ["x"]

    def test_len_and_contains(self):
        attrs = Attributes({"a": "1", "b": "2"})
        assert len(attrs) == 2
        assert "A" in attrs
        assert "c" not in attrs

    @given(
        st.dictionaries(
            st.sampled_from(["cn", "sn", "mail", "ou"]),
            st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=3, unique=True),
            max_size=4,
        )
    )
    def test_to_dict_round_trip(self, data):
        attrs = Attributes(data)
        assert Attributes(attrs.to_dict()) == attrs


class TestEntry:
    def test_construct_from_string_dn(self):
        entry = Entry("cn=John,o=Lucent", {"objectClass": "person", "cn": "John"})
        assert str(entry.dn) == "cn=John,o=Lucent"
        assert entry.object_classes == ["person"]

    def test_rdn_consistent(self):
        good = Entry("cn=John,o=Lucent", {"cn": "John"})
        bad = Entry("cn=John,o=Lucent", {"cn": "Jane"})
        assert good.rdn_consistent()
        assert not bad.rdn_consistent()

    def test_rdn_consistent_multi_ava(self):
        entry = Entry("cn=J+sn=D,o=L", {"cn": "J", "sn": "D"})
        assert entry.rdn_consistent()

    def test_copy_independent(self):
        entry = Entry("cn=X,o=L", {"cn": "X"})
        clone = entry.copy()
        clone.attributes.put("cn", "Y")
        assert entry.first("cn") == "X"

    def test_equality(self):
        a = Entry("cn=X,o=L", {"cn": "X"})
        b = Entry("CN=x,O=l", {"CN": "x"})
        assert a == b

    def test_attributes_shared_constructor_copies(self):
        attrs = Attributes({"cn": "X"})
        entry = Entry("cn=X,o=L", attrs)
        attrs.put("cn", "mutated")
        assert entry.first("cn") == "X"
