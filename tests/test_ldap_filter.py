"""Tests for the RFC 2254 search-filter parser and evaluator."""

import pytest
from hypothesis import given, strategies as st

from repro.ldap import Entry, matches, parse_filter
from repro.ldap.filter import (
    And,
    Approx,
    Equality,
    FilterSyntaxError,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Substrings,
)

JOHN = Entry(
    "cn=John Doe,o=Marketing,o=Lucent",
    {
        "objectClass": ["top", "person", "inetOrgPerson"],
        "cn": "John Doe",
        "sn": "Doe",
        "telephoneNumber": "+1 908 582 9000",
        "extension": "4100",
        "mail": ["john@lucent.com", "jdoe@lucent.com"],
    },
)


class TestParsing:
    def test_equality(self):
        node = parse_filter("(cn=John Doe)")
        assert isinstance(node, Equality)
        assert node.attribute == "cn"
        assert node.value == "John Doe"

    def test_presence(self):
        assert isinstance(parse_filter("(cn=*)"), Present)

    def test_substrings(self):
        node = parse_filter("(cn=Jo*hn*oe)")
        assert isinstance(node, Substrings)
        assert node.initial == "Jo"
        assert node.any_parts == ("hn",)
        assert node.final == "oe"

    def test_substring_leading_star(self):
        node = parse_filter("(cn=*Doe)")
        assert isinstance(node, Substrings)
        assert node.initial is None
        assert node.final == "Doe"

    def test_ordering_operators(self):
        assert isinstance(parse_filter("(extension>=4000)"), GreaterOrEqual)
        assert isinstance(parse_filter("(extension<=4999)"), LessOrEqual)

    def test_approx(self):
        assert isinstance(parse_filter("(cn~=johndoe)"), Approx)

    def test_boolean_nesting(self):
        node = parse_filter("(&(objectClass=person)(|(cn=John*)(sn=Doe))(!(ou=x)))")
        assert isinstance(node, And)
        assert isinstance(node.parts[1], Or)
        assert isinstance(node.parts[2], Not)

    def test_shorthand_without_parens(self):
        assert isinstance(parse_filter("cn=John"), Equality)

    def test_str_round_trip(self):
        text = "(&(objectClass=person)(!(cn=Jo*hn))(extension>=4000))"
        node = parse_filter(text)
        assert parse_filter(str(node)) == node

    def test_already_compiled_passthrough(self):
        node = parse_filter("(cn=x)")
        assert parse_filter(node) is node

    @pytest.mark.parametrize(
        "bad",
        ["", "()", "(cn)", "(&)", "(cn=a", "(cn=a))", "((cn=a))", "(=x)", "(cn=a(b)"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(FilterSyntaxError):
            parse_filter(bad)

    def test_escaped_value(self):
        node = parse_filter(r"(cn=a\2ab)")  # \2a is '*'
        assert isinstance(node, Equality)
        assert node.value == "a*b"


class TestMatching:
    def test_equality_case_insensitive(self):
        assert matches("(cn=john doe)", JOHN)
        assert not matches("(cn=jane doe)", JOHN)

    def test_multi_valued_any_match(self):
        assert matches("(mail=jdoe@lucent.com)", JOHN)

    def test_presence(self):
        assert matches("(telephoneNumber=*)", JOHN)
        assert not matches("(roomNumber=*)", JOHN)

    def test_substring_patterns(self):
        assert matches("(cn=John*)", JOHN)
        assert matches("(cn=*Doe)", JOHN)
        assert matches("(cn=*ohn*o*)", JOHN)
        assert not matches("(cn=Jane*)", JOHN)

    def test_substring_anchors(self):
        assert not matches("(cn=ohn*)", JOHN)   # initial must anchor at start
        assert not matches("(cn=*Jo)", JOHN)    # final must anchor at end

    def test_numeric_ordering(self):
        assert matches("(extension>=4000)", JOHN)
        assert matches("(extension<=4100)", JOHN)
        assert not matches("(extension>=5000)", JOHN)

    def test_lexicographic_ordering_for_text(self):
        assert matches("(sn>=Dae)", JOHN)
        assert not matches("(sn>=Z)", JOHN)

    def test_approx_ignores_space_and_hyphen(self):
        assert matches("(cn~=john-doe)", JOHN)
        assert matches("(cn~=JOHNDOE)", JOHN)
        assert not matches("(cn~=johndough)", JOHN)

    def test_and_or_not(self):
        assert matches("(&(objectClass=person)(sn=Doe))", JOHN)
        assert matches("(|(sn=Smith)(sn=Doe))", JOHN)
        assert not matches("(!(sn=Doe))", JOHN)
        assert matches("(&(|(cn=John*)(cn=Jane*))(!(ou=any)))", JOHN)

    def test_missing_attribute_never_matches(self):
        assert not matches("(roomNumber=12)", JOHN)
        assert not matches("(roomNumber>=1)", JOHN)

    def test_paper_style_device_filter(self):
        # Find people with a Definity extension in a given range.
        entry = Entry(
            "cn=Pat,o=L",
            {"objectClass": "person", "cn": "Pat", "definityExtension": "4321"},
        )
        f = "(&(objectClass=person)(definityExtension>=4000)(definityExtension<=4999))"
        assert matches(f, entry)


@given(st.text(alphabet="abcdefg ", min_size=1, max_size=12).filter(lambda s: s.strip()))
def test_equality_matches_self(value):
    entry = Entry("cn=T,o=L", {"cn": value.strip()})
    node = parse_filter(f"(cn={value.strip()})")
    assert node.matches(entry)


@given(
    st.text(alphabet="abcXYZ", min_size=1, max_size=10),
    st.integers(min_value=0, max_value=9),
)
def test_substring_initial_matches_prefix(value, cut):
    cut = min(cut, len(value))
    if cut == 0:
        return
    entry = Entry("cn=T,o=L", {"cn": value})
    assert matches(f"(cn={value[:cut]}*)", entry)
