"""Tests for backend equality indexes: correctness under every mutation."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.ldap import (
    DN,
    Entry,
            Modification,
    Rdn,
    )
from repro.ldap.backend import Backend


@pytest.fixture
def backend():
    b = Backend(["o=L"])
    b.add(Entry("o=L", {"objectClass": "organization", "o": "L"}))
    b.create_index("telephoneNumber")
    b.create_index("objectClass")
    return b


def add_person(backend, cn, phone=None):
    attrs = {"objectClass": "person", "cn": cn, "sn": cn}
    if phone:
        attrs["telephoneNumber"] = phone
    backend.add(Entry(f"cn={cn},o=L", attrs))


def search_phones(backend, phone):
    return {
        e.first("cn")
        for e in backend.search(DN.parse("o=L"), filter=f"(telephoneNumber={phone})")
    }


class TestIndexCorrectness:
    def test_index_used_for_equality(self, backend):
        add_person(backend, "A", "100")
        add_person(backend, "B", "200")
        assert search_phones(backend, "100") == {"A"}
        assert "telephonenumber" in backend.indexed_attributes()

    def test_index_inside_and_filter(self, backend):
        add_person(backend, "A", "100")
        hits = backend.search(
            DN.parse("o=L"),
            filter="(&(objectClass=person)(telephoneNumber=100))",
        )
        assert [e.first("cn") for e in hits] == ["A"]

    def test_index_tracks_modify(self, backend):
        add_person(backend, "A", "100")
        backend.modify(
            DN.parse("cn=A,o=L"), [Modification.replace("telephoneNumber", "300")]
        )
        assert search_phones(backend, "100") == set()
        assert search_phones(backend, "300") == {"A"}

    def test_index_tracks_delete(self, backend):
        add_person(backend, "A", "100")
        backend.delete(DN.parse("cn=A,o=L"))
        assert search_phones(backend, "100") == set()

    def test_index_tracks_attribute_removal(self, backend):
        add_person(backend, "A", "100")
        backend.modify(
            DN.parse("cn=A,o=L"), [Modification.delete("telephoneNumber")]
        )
        assert search_phones(backend, "100") == set()

    def test_index_tracks_rename(self, backend):
        add_person(backend, "A", "100")
        backend.modify_rdn(DN.parse("cn=A,o=L"), Rdn.parse("cn=Z"))
        assert search_phones(backend, "100") == {"Z"}

    def test_index_tracks_subtree_rename(self, backend):
        backend.add(Entry("o=Sub,o=L", {"objectClass": "organization", "o": "Sub"}))
        backend.add(
            Entry(
                "cn=Deep,o=Sub,o=L",
                {"objectClass": "person", "cn": "Deep", "sn": "D",
                 "telephoneNumber": "777"},
            )
        )
        backend.modify_rdn(DN.parse("o=Sub,o=L"), Rdn.parse("o=Moved"))
        (hit,) = backend.search(DN.parse("o=L"), filter="(telephoneNumber=777)")
        assert str(hit.dn) == "cn=Deep,o=Moved,o=L"

    def test_index_created_over_existing_data(self):
        b = Backend(["o=L"])
        b.add(Entry("o=L", {"objectClass": "organization", "o": "L"}))
        b.add(
            Entry("cn=Pre,o=L", {"objectClass": "person", "cn": "Pre", "sn": "P",
                                 "mail": "pre@x"})
        )
        b.create_index("mail")
        (hit,) = b.search(DN.parse("o=L"), filter="(mail=pre@x)")
        assert hit.first("cn") == "Pre"

    def test_index_multivalued(self, backend):
        backend.add(
            Entry(
                "cn=Multi,o=L",
                {"objectClass": "person", "cn": "Multi", "sn": "M",
                 "telephoneNumber": ["100", "200"]},
            )
        )
        assert search_phones(backend, "100") == {"Multi"}
        assert search_phones(backend, "200") == {"Multi"}
        backend.modify(
            DN.parse("cn=Multi,o=L"),
            [Modification.delete("telephoneNumber", "100")],
        )
        assert search_phones(backend, "100") == set()
        assert search_phones(backend, "200") == {"Multi"}

    def test_index_case_insensitive(self, backend):
        add_person(backend, "A")
        backend.modify(
            DN.parse("cn=A,o=L"), [Modification.add("telephoneNumber", "AbC")]
        )
        assert search_phones(backend, "abc") == {"A"}

    def test_base_scoping_respected(self, backend):
        backend.add(Entry("o=X,o=L", {"objectClass": "organization", "o": "X"}))
        backend.add(
            Entry("cn=In,o=X,o=L", {"objectClass": "person", "cn": "In", "sn": "I",
                                    "telephoneNumber": "100"})
        )
        add_person(backend, "Out", "100")
        hits = backend.search(DN.parse("o=X,o=L"), filter="(telephoneNumber=100)")
        assert [e.first("cn") for e in hits] == ["In"]

    def test_transaction_rollback_restores_index(self, backend):
        add_person(backend, "A", "100")
        with pytest.raises(Exception):
            with backend.transaction() as txn:
                txn.modify(
                    DN.parse("cn=A,o=L"),
                    [Modification.replace("telephoneNumber", "999")],
                )
                txn.delete(DN.parse("cn=Ghost,o=L"))
        assert search_phones(backend, "100") == {"A"}
        assert search_phones(backend, "999") == set()

    def test_create_index_idempotent(self, backend):
        backend.create_index("telephoneNumber")
        add_person(backend, "A", "100")
        assert search_phones(backend, "100") == {"A"}

    def test_duplicate_dn_not_double_counted(self, backend):
        add_person(backend, "A", "100")
        # Replacing with the same values must not corrupt the index.
        backend.modify(
            DN.parse("cn=A,o=L"), [Modification.replace("telephoneNumber", "100")]
        )
        assert search_phones(backend, "100") == {"A"}


OPS = st.lists(
    st.tuples(
        st.sampled_from(["add", "delete", "setphone", "clearphone", "rename"]),
        st.sampled_from(["u1", "u2", "u3"]),
        st.sampled_from(["100", "200", "300"]),
    ),
    min_size=1,
    max_size=30,
)


@given(operations=OPS)
@settings(max_examples=60, deadline=None)
def test_indexed_search_always_equals_scan(operations):
    """Property: for any operation sequence, an indexed equality search
    returns exactly what a full scan returns."""
    indexed = Backend(["o=L"])
    plain = Backend(["o=L"])
    for b in (indexed, plain):
        b.add(Entry("o=L", {"objectClass": "organization", "o": "L"}))
    indexed.create_index("telephoneNumber")

    for op, user, phone in operations:
        for b in (indexed, plain):
            try:
                if op == "add":
                    b.add(
                        Entry(
                            f"cn={user},o=L",
                            {"objectClass": "person", "cn": user, "sn": user,
                             "telephoneNumber": phone},
                        )
                    )
                elif op == "delete":
                    b.delete(DN.parse(f"cn={user},o=L"))
                elif op == "setphone":
                    b.modify(
                        DN.parse(f"cn={user},o=L"),
                        [Modification.replace("telephoneNumber", phone)],
                    )
                elif op == "clearphone":
                    b.modify(
                        DN.parse(f"cn={user},o=L"),
                        [Modification.delete("telephoneNumber")],
                    )
                elif op == "rename":
                    b.modify_rdn(
                        DN.parse(f"cn={user},o=L"), Rdn.parse(f"cn={user}x")
                    )
            except Exception:
                pass
        for phone_probe in ("100", "200", "300"):
            via_index = {
                str(e.dn)
                for e in indexed.search(
                    DN.parse("o=L"), filter=f"(telephoneNumber={phone_probe})"
                )
            }
            via_scan = {
                str(e.dn)
                for e in plain.search(
                    DN.parse("o=L"), filter=f"(telephoneNumber={phone_probe})"
                )
            }
            assert via_index == via_scan


class TestIndexSelectivity:
    def test_most_selective_probe_wins(self):
        b = Backend(["o=L"])
        b.add(Entry("o=L", {"objectClass": "organization", "o": "L"}))
        b.create_index("objectClass")
        b.create_index("telephoneNumber")
        for i in range(50):
            b.add(
                Entry(
                    f"cn=U{i},o=L",
                    {"objectClass": "person", "cn": f"U{i}", "sn": "U",
                     "telephoneNumber": str(1000 + i)},
                )
            )
        candidates = b._index_candidates(
            __import__("repro.ldap.filter", fromlist=["parse_filter"]).parse_filter(
                "(&(objectClass=person)(telephoneNumber=1007))"
            )
        )
        # The key-attribute bucket (size 1), not the person bucket (size 50).
        assert candidates is not None and len(candidates) == 1
        hits = b.search(
            DN.parse("o=L"),
            filter="(&(objectClass=person)(telephoneNumber=1007))",
        )
        assert [e.first("cn") for e in hits] == ["U7"]
