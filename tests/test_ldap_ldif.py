"""Tests for the LDIF reader/writer."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.ldap import Entry, entry_to_ldif, parse_ldif, write_ldif
from repro.ldap.ldif import LdifSyntaxError

SAMPLE = """\
version: 1

dn: o=Lucent
objectClass: organization
o: Lucent

# a comment line
dn: cn=John Doe,o=Marketing,o=Lucent
objectClass: person
cn: John Doe
sn: Doe
telephoneNumber: +1 908 582 9000
"""


class TestParse:
    def test_parse_two_entries(self):
        entries = parse_ldif(SAMPLE)
        assert len(entries) == 2
        assert str(entries[0].dn) == "o=Lucent"
        assert entries[1].first("telephoneNumber") == "+1 908 582 9000"

    def test_comments_skipped(self):
        assert len(parse_ldif("# only a comment\n")) == 0

    def test_base64_value(self):
        text = "dn: cn=X,o=L\ncn:: WMOpbMOpcGhvbmU=\n"
        (entry,) = parse_ldif(text)
        assert entry.first("cn") == "Xéléphone"

    def test_continuation_lines(self):
        text = "dn: cn=Long,o=L\ndescription: part one\n  and part two\n"
        (entry,) = parse_ldif(text)
        assert entry.first("description") == "part one and part two"

    def test_multi_valued(self):
        text = "dn: cn=X,o=L\nmail: a@x\nmail: b@x\n"
        (entry,) = parse_ldif(text)
        assert entry.get("mail") == ["a@x", "b@x"]

    def test_records_without_blank_separator(self):
        text = "dn: o=A\no: A\ndn: o=B\no: B\n"
        assert len(parse_ldif(text)) == 2

    def test_attribute_before_dn_rejected(self):
        with pytest.raises(LdifSyntaxError):
            parse_ldif("cn: X\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(LdifSyntaxError):
            parse_ldif("dn: o=A\nthis is not ldif\n")

    def test_url_value_rejected(self):
        with pytest.raises(LdifSyntaxError):
            parse_ldif("dn: o=A\njpegPhoto:< file:///x.jpg\n")

    def test_parse_from_stream(self):
        entries = parse_ldif(io.StringIO(SAMPLE))
        assert len(entries) == 2


class TestWrite:
    def test_round_trip(self):
        entries = parse_ldif(SAMPLE)
        out = write_ldif(entries)
        again = parse_ldif(out)
        assert again == entries

    def test_objectclass_emitted_first(self):
        entry = Entry("cn=X,o=L", {"zz": "1", "objectClass": "person", "cn": "X"})
        lines = entry_to_ldif(entry).splitlines()
        assert lines[0].startswith("dn:")
        assert lines[1] == "objectClass: person"

    def test_base64_for_leading_space(self):
        entry = Entry("cn=X,o=L", {"cn": "X", "description": " padded"})
        text = entry_to_ldif(entry)
        assert "description:: " in text
        (back,) = parse_ldif(text)
        assert back.first("description") == " padded"

    def test_base64_for_non_ascii(self):
        entry = Entry("cn=X,o=L", {"cn": "X", "sn": "Müller"})
        (back,) = parse_ldif(entry_to_ldif(entry))
        assert back.first("sn") == "Müller"

    def test_long_lines_folded(self):
        entry = Entry("cn=X,o=L", {"cn": "X", "description": "v" * 300})
        text = entry_to_ldif(entry)
        assert all(len(line) <= 76 for line in text.splitlines())
        (back,) = parse_ldif(text)
        assert back.first("description") == "v" * 300

    def test_write_to_stream(self):
        buf = io.StringIO()
        write_ldif([Entry("o=L", {"objectClass": "organization", "o": "L"})], buf)
        assert "dn: o=L" in buf.getvalue()


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["cn", "sn", "description", "mail"]),
            st.text(min_size=1, max_size=120).filter(lambda s: "\r" not in s and "\n" not in s),
        ),
        min_size=1,
        max_size=5,
        unique_by=lambda t: t[0],
    )
)
def test_ldif_round_trip_property(attrs):
    entry = Entry("cn=T,o=L", dict(attrs, cn="T"))
    (back,) = parse_ldif(entry_to_ldif(entry))
    assert back == entry
