"""Tests for LDIF change records (the RFC 2849 update format)."""

import pytest

from repro.ldap import (
    DN,
    LdapConnection,
    LdapServer,
    LdifChange,
    ModOp,
    Modification,
    apply_changes,
    parse_change_ldif,
    write_change_ldif,
)
from repro.ldap.ldif import LdifSyntaxError

SAMPLE = """\
version: 1

dn: cn=New Person,o=Lucent
changetype: add
objectClass: person
cn: New Person
sn: Person

dn: cn=Old Person,o=Lucent
changetype: delete

dn: cn=John Doe,o=Lucent
changetype: modify
replace: telephoneNumber
telephoneNumber: +1 908 582 9999
-
add: mail
mail: jdoe@lucent.com
-
delete: roomNumber
-

dn: cn=Rename Me,o=Lucent
changetype: modrdn
newrdn: cn=Renamed
deleteoldrdn: 1
"""


class TestParse:
    def test_all_four_changetypes(self):
        changes = parse_change_ldif(SAMPLE)
        assert [c.changetype for c in changes] == [
            "add", "delete", "modify", "modrdn",
        ]

    def test_add_attributes(self):
        add = parse_change_ldif(SAMPLE)[0]
        assert add.attributes["cn"] == ["New Person"]
        assert add.attributes["objectClass"] == ["person"]

    def test_modify_modifications(self):
        modify = parse_change_ldif(SAMPLE)[2]
        assert [m.op for m in modify.modifications] == [
            ModOp.REPLACE, ModOp.ADD, ModOp.DELETE,
        ]
        assert modify.modifications[0].values == ("+1 908 582 9999",)
        assert modify.modifications[2].attribute == "roomNumber"
        assert modify.modifications[2].values == ()

    def test_modrdn_fields(self):
        modrdn = parse_change_ldif(SAMPLE)[3]
        assert modrdn.new_rdn == "cn=Renamed"
        assert modrdn.delete_old_rdn is True

    def test_missing_changetype_rejected(self):
        with pytest.raises(LdifSyntaxError):
            parse_change_ldif("dn: cn=X,o=L\ncn: X\n")

    def test_unknown_changetype_rejected(self):
        with pytest.raises(LdifSyntaxError):
            parse_change_ldif("dn: cn=X,o=L\nchangetype: frobnicate\n")

    def test_bad_modify_op_rejected(self):
        with pytest.raises(LdifSyntaxError):
            parse_change_ldif(
                "dn: cn=X,o=L\nchangetype: modify\nfrob: cn\n-\n"
            )

    def test_modrdn_without_newrdn_rejected(self):
        with pytest.raises(LdifSyntaxError):
            parse_change_ldif("dn: cn=X,o=L\nchangetype: modrdn\n")


class TestWriteAndRoundTrip:
    def test_round_trip(self):
        changes = parse_change_ldif(SAMPLE)
        out = write_change_ldif(changes)
        again = parse_change_ldif(out)
        assert again == changes

    def test_write_modify_layout(self):
        text = write_change_ldif(
            [
                LdifChange(
                    DN.parse("cn=X,o=L"),
                    "modify",
                    modifications=(Modification.replace("sn", "New"),),
                )
            ]
        )
        assert "changetype: modify" in text
        assert "replace: sn" in text
        assert text.count("-") >= 1


class TestApply:
    @pytest.fixture
    def conn(self):
        server = LdapServer(["o=Lucent"])
        conn = LdapConnection(server)
        conn.add("o=Lucent", {"objectClass": "organization", "o": "Lucent"})
        conn.add(
            "cn=Old Person,o=Lucent",
            {"objectClass": "person", "cn": "Old Person", "sn": "P"},
        )
        conn.add(
            "cn=John Doe,o=Lucent",
            {"objectClass": "person", "cn": "John Doe", "sn": "Doe",
             "roomNumber": "1A"},
        )
        conn.add(
            "cn=Rename Me,o=Lucent",
            {"objectClass": "person", "cn": "Rename Me", "sn": "M"},
        )
        return conn

    def test_apply_whole_document(self, conn):
        applied = apply_changes(conn, parse_change_ldif(SAMPLE))
        assert applied == 4
        assert conn.exists("cn=New Person,o=Lucent")
        assert not conn.exists("cn=Old Person,o=Lucent")
        john = conn.get("cn=John Doe,o=Lucent")
        assert john.first("telephoneNumber") == "+1 908 582 9999"
        assert john.first("mail") == "jdoe@lucent.com"
        assert not john.has("roomNumber")
        assert conn.exists("cn=Renamed,o=Lucent")

    def test_changelog_export_replays_onto_fresh_server(self, conn):
        """A server's changelog, exported as change LDIF, rebuilds a
        replica — the offline counterpart of live replication."""
        from repro.ldap.backend import ChangeType

        source = conn.handler  # the LdapServer
        changes = []
        for record in source.backend.changelog:
            if record.change_type is ChangeType.ADD:
                changes.append(
                    LdifChange(
                        record.dn, "add",
                        attributes=record.after.attributes.to_dict(),
                    )
                )
            elif record.change_type is ChangeType.DELETE:
                changes.append(LdifChange(record.dn, "delete"))
            elif record.change_type is ChangeType.MODIFY:
                changes.append(
                    LdifChange(
                        record.dn, "modify", modifications=record.modifications
                    )
                )
            elif record.change_type is ChangeType.MODIFY_RDN:
                changes.append(
                    LdifChange(record.dn, "modrdn", new_rdn=str(record.new_rdn))
                )
        document = write_change_ldif(changes)

        replica = LdapServer(["o=Lucent"], server_id="replica")
        apply_changes(LdapConnection(replica), parse_change_ldif(document))
        original = {
            str(e.dn).lower(): e.attributes.normalized()
            for e in source.backend.all_entries()
        }
        copied = {
            str(e.dn).lower(): e.attributes.normalized()
            for e in replica.backend.all_entries()
        }
        assert copied == original
