"""Tests for the JSON/TCP transport: a real process-style boundary between
LDAP clients and the server or the LTAP gateway."""

import pytest

from repro.core import MetaComm, MetaCommConfig
from repro.ldap import (
    LdapConnection,
    LdapError,
    LdapServer,
    Modification,
    ResultCode,
    Scope,
)
from repro.ldap.net import LdapTcpServer, RemoteLdapHandler
from repro.schemas import PERSON_CLASSES


@pytest.fixture
def server():
    s = LdapServer(["o=Lucent"])
    LdapConnection(s).add("o=Lucent", {"objectClass": "organization", "o": "Lucent"})
    return s


@pytest.fixture
def listener(server):
    with LdapTcpServer(server) as tcp:
        yield tcp


@pytest.fixture
def remote(listener):
    with RemoteLdapHandler(*listener.address) as handler:
        yield LdapConnection(handler)


class TestRemoteCrud:
    def test_add_and_search(self, remote):
        remote.add(
            "cn=Net User,o=Lucent",
            {"objectClass": "person", "cn": "Net User", "sn": "User"},
        )
        hits = remote.search("o=Lucent", Scope.SUB, "(cn=Net User)")
        assert [e.first("sn") for e in hits] == ["User"]

    def test_modify(self, remote):
        remote.add(
            "cn=X,o=Lucent", {"objectClass": "person", "cn": "X", "sn": "X"}
        )
        remote.modify("cn=X,o=Lucent", [Modification.replace("sn", "Y")])
        assert remote.get("cn=X,o=Lucent").first("sn") == "Y"

    def test_modify_rdn(self, remote):
        remote.add(
            "cn=X,o=Lucent", {"objectClass": "person", "cn": "X", "sn": "X"}
        )
        remote.modify_rdn("cn=X,o=Lucent", "cn=Z")
        assert remote.exists("cn=Z,o=Lucent")

    def test_delete(self, remote):
        remote.add(
            "cn=X,o=Lucent", {"objectClass": "person", "cn": "X", "sn": "X"}
        )
        remote.delete("cn=X,o=Lucent")
        assert not remote.exists("cn=X,o=Lucent")

    def test_compare(self, remote):
        remote.add(
            "cn=X,o=Lucent", {"objectClass": "person", "cn": "X", "sn": "X"}
        )
        assert remote.compare("cn=X,o=Lucent", "sn", "x")
        assert not remote.compare("cn=X,o=Lucent", "sn", "nope")

    def test_errors_cross_the_wire(self, remote):
        with pytest.raises(LdapError) as err:
            remote.delete("cn=Ghost,o=Lucent")
        assert err.value.code is ResultCode.NO_SUCH_OBJECT
        assert "Ghost" in err.value.message or err.value.matched_dn

    def test_unicode_values_survive(self, remote):
        remote.add(
            "cn=Ünïcode,o=Lucent",
            {"objectClass": "person", "cn": "Ünïcode", "sn": "Ü"},
        )
        assert remote.get("cn=Ünïcode,o=Lucent").first("sn") == "Ü"


class TestRemoteSessions:
    def test_bind_state_is_per_connection(self, server, listener):
        server.require_bind_for_writes = True
        bound = LdapConnection(RemoteLdapHandler(*listener.address))
        anonymous = LdapConnection(RemoteLdapHandler(*listener.address))
        bound.bind("cn=Directory Manager", "secret")
        bound.add(
            "cn=ByAdmin,o=Lucent",
            {"objectClass": "person", "cn": "ByAdmin", "sn": "A"},
        )
        with pytest.raises(LdapError) as err:
            anonymous.add(
                "cn=ByAnon,o=Lucent",
                {"objectClass": "person", "cn": "ByAnon", "sn": "A"},
            )
        assert err.value.code is ResultCode.INSUFFICIENT_ACCESS_RIGHTS


class TestRemoteMetaComm:
    def test_full_metacomm_behind_tcp(self):
        """The whole Figure-1 stack driven by a client on the far side of
        a socket: LTAP really does look like just another LDAP server."""
        system = MetaComm(MetaCommConfig(organizations=("Marketing",)))
        with LdapTcpServer(system.gateway) as tcp:
            with RemoteLdapHandler(*tcp.address) as handler:
                conn = LdapConnection(handler)
                conn.add(
                    "cn=Remote User,o=Marketing,o=Lucent",
                    {
                        "objectClass": list(PERSON_CLASSES),
                        "cn": "Remote User",
                        "sn": "User",
                        "definityExtension": "4100",
                    },
                )
                assert system.pbx().contains("4100")
                assert system.messaging.contains("+1 908 582 4100")
                entry = conn.get("cn=Remote User,o=Marketing,o=Lucent")
                assert entry.first("mpMailboxId", "").startswith("MB-")
        assert system.consistent()

    def test_protocol_garbage_answers_protocol_error(self, listener):
        import json
        import socket

        with socket.create_connection(listener.address, timeout=5) as sock:
            sock.sendall(b"this is not json\n")
            line = sock.makefile("rb").readline()
        payload = json.loads(line)
        assert payload["code"] == int(ResultCode.PROTOCOL_ERROR)
