"""Tests for multi-master replication and its relaxed write-write consistency."""

import pytest

from repro.ldap import LdapConnection, LdapServer, Modification
from repro.ldap.replication import ReplicationEngine


def make_server(server_id):
    server = LdapServer(["o=Lucent"], server_id=server_id)
    LdapConnection(server).add("o=Lucent", {"objectClass": "organization", "o": "Lucent"})
    return server


@pytest.fixture
def pair():
    a, b = make_server("a"), make_server("b")
    engine = ReplicationEngine()
    engine.connect_mesh([a, b])
    engine.propagate()
    return a, b, engine


class TestBasicPropagation:
    def test_add_propagates(self, pair):
        a, b, engine = pair
        LdapConnection(a).add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        engine.propagate()
        assert b.get("cn=X,o=Lucent").first("cn") == "X"
        assert engine.converged()

    def test_modify_propagates(self, pair):
        a, b, engine = pair
        LdapConnection(a).add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        engine.propagate()
        LdapConnection(b).modify("cn=X,o=Lucent", [Modification.replace("sn", "S")])
        engine.propagate()
        assert a.get("cn=X,o=Lucent").first("sn") == "S"
        assert engine.converged()

    def test_delete_propagates(self, pair):
        a, b, engine = pair
        LdapConnection(a).add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        engine.propagate()
        LdapConnection(a).delete("cn=X,o=Lucent")
        engine.propagate()
        assert not LdapConnection(b).exists("cn=X,o=Lucent")
        assert engine.converged()

    def test_modify_rdn_propagates(self, pair):
        a, b, engine = pair
        LdapConnection(a).add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        engine.propagate()
        LdapConnection(a).modify_rdn("cn=X,o=Lucent", "cn=Y")
        engine.propagate()
        assert LdapConnection(b).exists("cn=Y,o=Lucent")
        assert engine.converged()

    def test_no_echo_loops(self, pair):
        a, b, engine = pair
        LdapConnection(a).add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        shipped_first = engine.propagate()
        shipped_second = engine.propagate()
        assert shipped_first >= 1
        assert shipped_second == 0


class TestConflicts:
    def test_concurrent_adds_merge(self, pair):
        a, b, engine = pair
        LdapConnection(a).add(
            "cn=X,o=Lucent", {"objectClass": "person", "cn": "X", "sn": "FromA"}
        )
        LdapConnection(b).add(
            "cn=X,o=Lucent", {"objectClass": "person", "cn": "X", "mail": "b@x"}
        )
        engine.propagate()
        assert engine.converged()
        # Later writer's attributes win; both sides identical.
        ea, eb = a.get("cn=X,o=Lucent"), b.get("cn=X,o=Lucent")
        assert ea.attributes.normalized() == eb.attributes.normalized()

    def test_concurrent_replace_lww(self, pair):
        a, b, engine = pair
        LdapConnection(a).add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        engine.propagate()
        LdapConnection(a).modify("cn=X,o=Lucent", [Modification.replace("sn", "A")])
        LdapConnection(b).modify("cn=X,o=Lucent", [Modification.replace("sn", "B")])
        engine.propagate()
        assert engine.converged()
        assert a.get("cn=X,o=Lucent").first("sn") == b.get("cn=X,o=Lucent").first("sn")

    def test_conflicting_attribute_writes_do_not_clobber_others(self, pair):
        a, b, engine = pair
        LdapConnection(a).add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        engine.propagate()
        LdapConnection(a).modify("cn=X,o=Lucent", [Modification.replace("sn", "A")])
        LdapConnection(b).modify("cn=X,o=Lucent", [Modification.replace("mail", "m@x")])
        engine.propagate()
        assert engine.converged()
        entry = a.get("cn=X,o=Lucent")
        assert entry.first("sn") == "A"
        assert entry.first("mail") == "m@x"

    def test_delete_vs_modify_skips_gracefully(self, pair):
        a, b, engine = pair
        LdapConnection(a).add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        engine.propagate()
        LdapConnection(a).delete("cn=X,o=Lucent")
        LdapConnection(b).modify("cn=X,o=Lucent", [Modification.replace("sn", "B")])
        engine.propagate()
        # Divergence on delete/modify races is tolerated and repaired by
        # resync in MetaComm; here the modify is simply skipped at a.
        assert not LdapConnection(a).exists("cn=X,o=Lucent")


class TestMesh:
    def test_three_master_mesh_converges(self):
        servers = [make_server(s) for s in ("a", "b", "c")]
        engine = ReplicationEngine()
        engine.connect_mesh(servers)
        engine.propagate()
        conns = [LdapConnection(s) for s in servers]
        for i, conn in enumerate(conns):
            conn.add(f"cn=U{i},o=Lucent", {"objectClass": "person", "cn": f"U{i}"})
        engine.propagate()
        assert engine.converged()
        assert servers[0].size() == 4  # suffix + three users

    def test_change_applied_once_despite_two_paths(self):
        servers = [make_server(s) for s in ("a", "b", "c")]
        engine = ReplicationEngine()
        engine.connect_mesh(servers)
        engine.propagate()
        LdapConnection(servers[0]).add(
            "cn=Once,o=Lucent", {"objectClass": "person", "cn": "Once"}
        )
        engine.propagate()
        # b and c each received the add exactly once (no duplicate-apply errors),
        # and no server re-imported its own change.
        assert engine.converged()

    def test_duplicate_server_id_rejected(self):
        engine = ReplicationEngine()
        with pytest.raises(ValueError):
            engine.connect(make_server("dup"), make_server("dup"))

    def test_statistics_track_shipping(self, pair):
        a, b, engine = pair
        LdapConnection(a).add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        before = engine.statistics["shipped"]
        engine.propagate()
        assert engine.statistics["shipped"] == before + 1
