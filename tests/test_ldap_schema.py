"""Tests for schema definition and entry validation."""

import pytest

from repro.ldap import (
    AttributeType,
    ClassKind,
    Entry,
    LdapError,
    ObjectClass,
    ResultCode,
    Schema,
    SchemaViolationError,
    define_attributes,
)


@pytest.fixture
def schema():
    s = Schema()
    define_attributes(
        s, ["cn", "sn", "o", "telephoneNumber", "mail", "definityExtension"]
    )
    s.define_attribute(AttributeType("employeeNumber", single_value=True))
    s.define_attribute(
        AttributeType(
            "extension",
            validator=lambda v: None if v.isdigit() else "must be numeric",
        )
    )
    s.define_class(ObjectClass("top", kind=ClassKind.ABSTRACT))
    s.define_class(
        ObjectClass("person", sup="top", must=("cn", "sn"), may=("telephoneNumber", "mail"))
    )
    s.define_class(
        ObjectClass(
            "organizationalPerson", sup="person", may=("employeeNumber", "extension")
        )
    )
    s.define_class(ObjectClass("organization", sup="top", must=("o",)))
    s.define_class(
        ObjectClass(
            "definityUser",
            kind=ClassKind.AUXILIARY,
            sup="top",
            may=("definityExtension",),
        )
    )
    return s


class TestDefinition:
    def test_duplicate_attribute_rejected(self, schema):
        with pytest.raises(ValueError):
            schema.define_attribute(AttributeType("cn"))

    def test_alias_lookup(self, schema):
        schema.define_attribute(AttributeType("surname2", aliases=("sn2",)))
        assert schema.attribute("SN2").name == "surname2"

    def test_duplicate_class_rejected(self, schema):
        with pytest.raises(ValueError):
            schema.define_class(ObjectClass("person"))

    def test_auxiliary_with_must_rejected(self, schema):
        # The exact LDAP limitation from paper section 5.2.
        with pytest.raises(ValueError, match="mandatory"):
            schema.define_class(
                ObjectClass("badAux", kind=ClassKind.AUXILIARY, must=("cn",))
            )

    def test_undefined_superclass_rejected(self, schema):
        with pytest.raises(ValueError):
            schema.define_class(ObjectClass("x", sup="nonexistent"))

    def test_undefined_attribute_reference_rejected(self, schema):
        with pytest.raises(ValueError):
            schema.define_class(ObjectClass("y", sup="top", may=("ghostAttr",)))

    def test_superclass_chain(self, schema):
        chain = [c.name for c in schema.superclass_chain("organizationalPerson")]
        assert chain == ["organizationalPerson", "person", "top"]


class TestValidation:
    def test_valid_entry(self, schema):
        schema.check_entry(
            Entry("cn=J,o=L", {"objectClass": ["person"], "cn": "J", "sn": "D"})
        )

    def test_missing_objectclass(self, schema):
        with pytest.raises(SchemaViolationError, match="no objectClass"):
            schema.check_entry(Entry("cn=J,o=L", {"cn": "J"}))

    def test_unknown_objectclass_strict(self, schema):
        with pytest.raises(SchemaViolationError, match="unknown object class"):
            schema.check_entry(Entry("cn=J,o=L", {"objectClass": "ghost", "cn": "J"}))

    def test_unknown_objectclass_lenient(self, schema):
        schema.strict = False
        schema.check_entry(
            Entry("cn=J,o=L", {"objectClass": ["person", "ghost"], "cn": "J", "sn": "D"})
        )

    def test_missing_mandatory_attribute(self, schema):
        with pytest.raises(SchemaViolationError, match="sn"):
            schema.check_entry(Entry("cn=J,o=L", {"objectClass": "person", "cn": "J"}))

    def test_abstract_only_rejected(self, schema):
        with pytest.raises(SchemaViolationError, match="structural"):
            schema.check_entry(Entry("cn=J,o=L", {"objectClass": "top", "cn": "J"}))

    def test_disallowed_attribute(self, schema):
        with pytest.raises(SchemaViolationError, match="not allowed"):
            schema.check_entry(
                Entry(
                    "cn=J,o=L",
                    {"objectClass": "person", "cn": "J", "sn": "D", "o": "X"},
                )
            )

    def test_auxiliary_class_extends_allowed_set(self, schema):
        entry = Entry(
            "cn=J,o=L",
            {
                "objectClass": ["person", "definityUser"],
                "cn": "J",
                "sn": "D",
                "definityExtension": "4100",
            },
        )
        schema.check_entry(entry)

    def test_auxiliary_presence_does_not_require_fields(self, schema):
        # Paper 5.2: the auxiliary class only indicates the person MAY use
        # the device — an entry without the extension is legal.
        entry = Entry(
            "cn=J,o=L",
            {"objectClass": ["person", "definityUser"], "cn": "J", "sn": "D"},
        )
        schema.check_entry(entry)

    def test_single_value_enforced(self, schema):
        entry = Entry(
            "cn=J,o=L",
            {
                "objectClass": ["organizationalPerson"],
                "cn": "J",
                "sn": "D",
                "employeeNumber": ["1", "2"],
            },
        )
        with pytest.raises(LdapError) as err:
            schema.check_entry(entry)
        assert err.value.code is ResultCode.CONSTRAINT_VIOLATION

    def test_validator_hook(self, schema):
        entry = Entry(
            "cn=J,o=L",
            {
                "objectClass": ["organizationalPerson"],
                "cn": "J",
                "sn": "D",
                "extension": "41x0",
            },
        )
        with pytest.raises(LdapError) as err:
            schema.check_entry(entry)
        assert err.value.code is ResultCode.INVALID_ATTRIBUTE_SYNTAX

    def test_inherited_must_enforced(self, schema):
        with pytest.raises(SchemaViolationError):
            schema.check_entry(
                Entry("cn=J,o=L", {"objectClass": "organizationalPerson", "cn": "J"})
            )

    def test_undefined_attribute_type_strict(self, schema):
        entry = Entry(
            "cn=J,o=L",
            {"objectClass": "person", "cn": "J", "sn": "D", "frobnicator": "1"},
        )
        with pytest.raises(SchemaViolationError):
            schema.check_entry(entry)
