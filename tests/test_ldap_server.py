"""Tests for the LDAP server + client connection layer."""

import pytest

from repro.ldap import (
            LdapConnection,
    LdapError,
    LdapServer,
    Modification,
    ResultCode,
    Scope,
)


@pytest.fixture
def server():
    s = LdapServer(["o=Lucent"])
    conn = LdapConnection(s)
    conn.add("o=Lucent", {"objectClass": "organization", "o": "Lucent"})
    conn.add("o=R&D,o=Lucent", {"objectClass": "organization", "o": "R&D"})
    conn.add(
        "cn=Jill Lu,o=R&D,o=Lucent",
        {
            "objectClass": "person",
            "cn": "Jill Lu",
            "sn": "Lu",
            "userPassword": "jillpw",
        },
    )
    return s


@pytest.fixture
def conn(server):
    return LdapConnection(server)


class TestCrudThroughConnection:
    def test_add_and_get(self, conn):
        conn.add("cn=Tim,o=R&D,o=Lucent", {"objectClass": "person", "cn": "Tim"})
        assert conn.get("cn=Tim,o=R&D,o=Lucent").first("cn") == "Tim"

    def test_get_missing_raises(self, conn):
        with pytest.raises(LdapError) as err:
            conn.get("cn=Ghost,o=Lucent")
        assert err.value.code is ResultCode.NO_SUCH_OBJECT

    def test_exists(self, conn):
        assert conn.exists("cn=Jill Lu,o=R&D,o=Lucent")
        assert not conn.exists("cn=Ghost,o=Lucent")

    def test_modify(self, conn):
        conn.modify(
            "cn=Jill Lu,o=R&D,o=Lucent",
            [Modification.replace("telephoneNumber", "+1 2")],
        )
        assert conn.get("cn=Jill Lu,o=R&D,o=Lucent").first("telephoneNumber") == "+1 2"

    def test_replace_convenience(self, conn):
        conn.replace("cn=Jill Lu,o=R&D,o=Lucent", {"sn": "Lu-Chen", "mail": ["j@l"]})
        entry = conn.get("cn=Jill Lu,o=R&D,o=Lucent")
        assert entry.first("sn") == "Lu-Chen"
        assert entry.get("mail") == ["j@l"]

    def test_modify_rdn(self, conn):
        conn.modify_rdn("cn=Jill Lu,o=R&D,o=Lucent", "cn=Jill L")
        assert conn.exists("cn=Jill L,o=R&D,o=Lucent")

    def test_delete(self, conn):
        conn.delete("cn=Jill Lu,o=R&D,o=Lucent")
        assert not conn.exists("cn=Jill Lu,o=R&D,o=Lucent")

    def test_search_scopes(self, conn):
        subtree = conn.search("o=Lucent", Scope.SUB)
        one = conn.search("o=Lucent", Scope.ONE)
        base = conn.search("o=Lucent", Scope.BASE)
        assert len(subtree) == 3
        assert len(one) == 1
        assert len(base) == 1

    def test_search_with_filter(self, conn):
        hits = conn.search("o=Lucent", Scope.SUB, "(sn=Lu)")
        assert [e.first("cn") for e in hits] == ["Jill Lu"]

    def test_compare(self, conn):
        assert conn.compare("cn=Jill Lu,o=R&D,o=Lucent", "sn", "lu")
        assert not conn.compare("cn=Jill Lu,o=R&D,o=Lucent", "sn", "wrong")

    def test_compare_missing_entry_raises(self, conn):
        with pytest.raises(LdapError):
            conn.compare("cn=Ghost,o=Lucent", "sn", "x")

    def test_error_response_carries_matched_dn(self, conn):
        with pytest.raises(LdapError) as err:
            conn.get("cn=X,o=Nowhere,o=Lucent")
        assert err.value.code is ResultCode.NO_SUCH_OBJECT


class TestBind:
    def test_anonymous_bind(self, conn):
        conn.bind()  # no credentials
        assert conn.session.bound_dn is None

    def test_root_bind(self, server):
        conn = LdapConnection(server)
        conn.bind("cn=Directory Manager", "secret")
        assert conn.session.authenticated

    def test_root_bind_bad_password(self, server):
        conn = LdapConnection(server)
        with pytest.raises(LdapError) as err:
            conn.bind("cn=Directory Manager", "wrong")
        assert err.value.code is ResultCode.INVALID_CREDENTIALS

    def test_user_bind(self, server):
        conn = LdapConnection(server)
        conn.bind("cn=Jill Lu,o=R&D,o=Lucent", "jillpw")
        assert conn.session.authenticated

    def test_user_bind_bad_password(self, server):
        conn = LdapConnection(server)
        with pytest.raises(LdapError):
            conn.bind("cn=Jill Lu,o=R&D,o=Lucent", "nope")

    def test_unknown_user_bind(self, server):
        conn = LdapConnection(server)
        with pytest.raises(LdapError):
            conn.bind("cn=Ghost,o=Lucent", "x")

    def test_unbind(self, server):
        conn = LdapConnection(server)
        conn.bind("cn=Directory Manager", "secret")
        conn.unbind()
        assert not conn.session.authenticated


class TestAccessControl:
    def test_writes_require_bind_when_configured(self):
        server = LdapServer(["o=L"], require_bind_for_writes=True)
        conn = LdapConnection(server)
        with pytest.raises(LdapError) as err:
            conn.add("o=L", {"objectClass": "organization", "o": "L"})
        assert err.value.code is ResultCode.INSUFFICIENT_ACCESS_RIGHTS
        conn.bind("cn=Directory Manager", "secret")
        conn.add("o=L", {"objectClass": "organization", "o": "L"})

    def test_reads_allowed_anonymously(self):
        server = LdapServer(["o=L"], require_bind_for_writes=True)
        admin = LdapConnection(server)
        admin.bind("cn=Directory Manager", "secret")
        admin.add("o=L", {"objectClass": "organization", "o": "L"})
        anon = LdapConnection(server)
        assert anon.search("o=L")


class TestStatistics:
    def test_read_write_counters(self, server, conn):
        before_reads = server.statistics["reads"]
        before_writes = server.statistics["writes"]
        conn.search("o=Lucent")
        conn.add("cn=S,o=Lucent", {"objectClass": "person", "cn": "S"})
        assert server.statistics["reads"] == before_reads + 1
        assert server.statistics["writes"] == before_writes + 1
