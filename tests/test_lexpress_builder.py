"""Tests for MappingSetBuilder — the section-5.4 'GUI' replacement that
generates both directions of a schema pair from one declaration."""

import pytest

from repro.lexpress import (
    LexpressCompileError,
    MappingSetBuilder,
    TargetAction,
    UpdateDescriptor,
    UpdateOp,
)


@pytest.fixture
def pair():
    builder = (
        MappingSetBuilder("pbx", "ldap")
        .key("Extension", "definityExtension")
        .originator("lastUpdater")
        .map("Room", "roomNumber")
        .map_with(
            "Extension",
            "telephoneNumber",
            forward='concat("+1 908 582 ", Extension)',
            backward="substr(telephoneNumber, 11)",
        )
        .table(
            "COS",
            "serviceClass",
            {"1": "gold", "2": "silver"},
            default="standard",
            reverse_default="2",
        )
        .partition(backward='prefix(Extension, "4")')
    )
    return builder.compile()


class TestGeneration:
    def test_source_text_is_valid_lexpress(self):
        builder = MappingSetBuilder("a", "b").key("k", "K").map("x", "X")
        forward, backward = builder.build()
        assert "mapping a_to_b" in forward
        assert "mapping b_to_a" in backward
        assert "key k -> K;" in forward
        assert "key K -> k;" in backward

    def test_key_required(self):
        with pytest.raises(LexpressCompileError):
            MappingSetBuilder("a", "b").map("x", "X").build()

    def test_forward_and_backward_names(self, pair):
        forward, backward = pair
        assert forward.name == "pbx_to_ldap"
        assert backward.name == "ldap_to_pbx"
        assert (forward.source, forward.target) == ("pbx", "ldap")
        assert (backward.source, backward.target) == ("ldap", "pbx")

    def test_originator_generated_both_sides(self, pair):
        forward, backward = pair
        # Forward stamps the source name; backward declares the attribute.
        assert forward.image({"Extension": "4100"})["lastUpdater"] == ["pbx"]
        assert backward.originator == "lastUpdater"


class TestRoundTrip:
    def test_identity_map_round_trips(self, pair):
        forward, backward = pair
        ldap = forward.image({"Extension": "4100", "Room": "2B"})
        assert ldap["roomNumber"] == ["2B"]
        pbx = backward.image(ldap)
        assert pbx["Room"] == ["2B"]
        assert pbx["Extension"] == ["4100"]

    def test_transformed_map_round_trips(self, pair):
        forward, backward = pair
        ldap = forward.image({"Extension": "4100"})
        assert ldap["telephoneNumber"] == ["+1 908 582 4100"]
        assert backward.image(ldap)["Extension"] == ["4100"]

    def test_table_inverts(self, pair):
        forward, backward = pair
        assert forward.image({"Extension": "1", "COS": "1"})["serviceClass"] == ["gold"]
        assert backward.image(
            {"definityExtension": "1", "serviceClass": "gold"}
        )["COS"] == ["1"]

    def test_table_defaults(self, pair):
        forward, backward = pair
        assert forward.image({"Extension": "1", "COS": "7"})["serviceClass"] == [
            "standard"
        ]
        assert backward.image(
            {"definityExtension": "1", "serviceClass": "weird"}
        )["COS"] == ["2"]

    def test_backward_partition_applies(self, pair):
        _forward, backward = pair
        outside = UpdateDescriptor(
            UpdateOp.ADD, "ldap", "9100", new={"definityExtension": "9100"}
        )
        inside = UpdateDescriptor(
            UpdateOp.ADD, "ldap", "4100", new={"definityExtension": "4100"}
        )
        assert backward.translate(outside).action is TargetAction.SKIP
        assert backward.translate(inside).action is TargetAction.ADD

    def test_conditional_round_trip(self, pair):
        """The full section-5.4 loop: a PBX-originated update mapped to
        LDAP carries lastUpdater=pbx; translating the LDAP image back
        toward the PBX yields a conditional update."""
        forward, backward = pair
        ldap_image = forward.image({"Extension": "4100", "Room": "2B"})
        descriptor = UpdateDescriptor(
            UpdateOp.ADD, "ldap", "4100", new=ldap_image
        )
        update = backward.translate(descriptor)
        assert update.conditional

    def test_quoting_survives_special_characters(self):
        builder = (
            MappingSetBuilder("a", "b")
            .key("k", "K")
            .table("t", "T", {'va"l': 'x\\y'})
        )
        forward, _backward = builder.compile()
        assert forward.image({"k": "1", "t": 'va"l'})["T"] == ["x\\y"]
