"""Tests for the transitive-closure engine and cycle analysis.

These exercise the exact scenarios of paper section 4.2: the LDAP
attributes ``telephoneNumber`` and ``definityExtension`` related through
the Definity attribute ``Extension``, multi-hop propagation into the
messaging platform, and the first-mapping-wins conflict rule for
inconsistently set attributes.
"""

import pytest

from repro.lexpress import (
    ClosureEngine,
    CyclicDependencyError,
    FixpointError,
    analyze_cycles,
    check_cycles,
    compile_description,
    dependency_graph,
)

# The three-repository mapping web from the paper: PBX <-> LDAP <-> MP.
DESCRIPTIONS = """
mapping pbx_to_ldap {
    source pbx;
    target ldap;
    key Extension -> definityExtension;
    map telephoneNumber = concat("+1 908 582 ", Extension);
    map cn = Name;
}

mapping ldap_to_pbx {
    source ldap;
    target pbx;
    key definityExtension -> Extension;
    map Extension = alt(definityExtension, substr(telephoneNumber, 11));
    map Name = cn;
}

mapping ldap_to_mp {
    source ldap;
    target mp;
    key telephoneNumber -> TelephoneNumber;
    map MailboxId = concat("MB-", digits(substr(telephoneNumber, 11)));
    map SubscriberName = cn;
}

mapping mp_to_ldap {
    source mp;
    target ldap;
    key TelephoneNumber -> telephoneNumber;
    map mpMailboxId = MailboxId;
}
"""


@pytest.fixture
def engine():
    return ClosureEngine(compile_description(DESCRIPTIONS).values())


class TestPaperExamples:
    def test_extension_change_updates_both_ldap_attributes(self, engine):
        """Section 4.2: 'the LDAP attributes telephoneNumber and
        DefinityExtension are related through the Definity attribute
        Extension.  If either changes, lexpress changes the other.'"""
        result = engine.propagate(
            "pbx", {"Extension": "4200", "Name": "Doe, John"}, changed=["Extension"]
        )
        ldap = result.image("ldap")
        assert ldap["definityExtension"] == ["4200"]
        assert ldap["telephoneNumber"] == ["+1 908 582 4200"]

    def test_multi_hop_pbx_to_mp(self, engine):
        """Section 4.2: 'When the extension of an existing object changes,
        the PBX-to-LDAP mapping changes the telephone number.  Because
        lexpress processes the transitive closure of mappings, it also
        uses the LDAP-to-MP mapping to change the voice mailbox id.'"""
        result = engine.propagate(
            "pbx", {"Extension": "4300", "Name": "Lu, Jill"}, changed=["Extension"]
        )
        mp = result.image("mp")
        assert mp["TelephoneNumber"] == ["+1 908 582 4300"]
        assert mp["MailboxId"] == ["MB-4300"]

    def test_ldap_change_reaches_pbx(self, engine):
        result = engine.propagate(
            "ldap",
            {"telephoneNumber": "+1 908 582 4400", "cn": "Pat Smith"},
            changed=["telephoneNumber"],
        )
        assert result.image("pbx")["Extension"] == ["4400"]

    def test_inconsistent_explicit_attributes_first_win(self, engine):
        """Section 4.2: 'If telephoneNumber and DefinityExtension are set
        inconsistently ... the inconsistently set attributes do not affect
        each other's values and only one of them has its value propagated
        to other attributes.'"""
        result = engine.propagate(
            "ldap",
            {"telephoneNumber": "+1 908 582 4111", "definityExtension": "4999"},
            changed=["telephoneNumber", "definityExtension"],
            explicit=["telephoneNumber", "definityExtension"],
        )
        ldap = result.image("ldap")
        # Both keep exactly the values the client set.
        assert ldap["telephoneNumber"] == ["+1 908 582 4111"]
        assert ldap["definityExtension"] == ["4999"]
        # Exactly one of them drove the PBX Extension (first mapping wins;
        # ldap_to_pbx prefers definityExtension through alt()).
        assert result.image("pbx")["Extension"] in (["4999"], ["4111"])
        # The disagreement is visible but classified as explicit/benign.
        assert result.conflicts
        assert not result.unstable_conflicts()

    def test_explicit_attribute_never_overwritten(self, engine):
        result = engine.propagate(
            "ldap",
            {"definityExtension": "4500", "telephoneNumber": "+1 555 000 0000"},
            changed=["definityExtension"],
            explicit=["telephoneNumber"],
        )
        # telephoneNumber was explicitly set; the closure must not replace
        # it even though definityExtension maps onto it via the PBX.
        assert result.image("ldap")["telephoneNumber"] == ["+1 555 000 0000"]


class TestMechanics:
    def test_unchanged_attributes_keep_context(self, engine):
        base = {"ldap": {"cn": ["Old Name"], "definityExtension": ["4100"]}}
        result = engine.propagate(
            "ldap",
            {"cn": "New Name", "definityExtension": "4100"},
            changed=["cn"],
            base_images=base,
        )
        assert result.image("pbx")["Name"] == ["New Name"]

    def test_changed_tracking(self, engine):
        result = engine.propagate(
            "pbx", {"Extension": "4000", "Name": "A"}, changed=["Extension"]
        )
        assert "telephonenumber" in result.changed["ldap"]
        assert "mailboxid" in result.changed["mp"]
        # Name did not change, so cn must not be in the changed set.
        assert "cn" not in result.changed.get("ldap", set())

    def test_no_relevant_mapping_is_a_noop(self, engine):
        result = engine.propagate("pbx", {"Port": "01A0101"}, changed=["Port"])
        assert result.image("ldap") == {}

    def test_value_equal_does_not_ripple(self, engine):
        base = {
            "ldap": {
                "definityExtension": ["4100"],
                "telephoneNumber": ["+1 908 582 4100"],
            },
            "pbx": {"Extension": ["4100"]},
        }
        result = engine.propagate(
            "pbx", {"Extension": "4100"}, changed=["Extension"], base_images=base
        )
        # The recomputed values match what is already there — nothing
        # should be reported as changed at the LDAP level.
        assert "telephonenumber" not in result.changed.get("ldap", set())

    def test_iterations_bounded(self):
        engine = ClosureEngine(
            compile_description(DESCRIPTIONS).values(), max_iterations=1
        )
        with pytest.raises(FixpointError):
            engine.propagate(
                "pbx", {"Extension": "4100", "Name": "X"}, changed=["Extension"]
            )


UNSTABLE = """
mapping a_to_b {
    source a;
    target b;
    key k -> k;
    map x = concat(x2, "!");
}
mapping b_to_a {
    source b;
    target a;
    key k -> k;
    map x2 = x;
}
"""

STABLE_CYCLE = """
mapping a_to_b {
    source a;
    target b;
    key k -> k;
    map x = upper(x2);
}
mapping b_to_a {
    source b;
    target a;
    key k -> k;
    map x2 = x;
}
"""


class TestCycleAnalysis:
    def test_dependency_graph_shape(self, engine):
        graph = dependency_graph(
            compile_description(DESCRIPTIONS).values()
        )
        assert ("pbx", "extension") in graph
        assert graph.has_edge(("pbx", "extension"), ("ldap", "telephonenumber"))

    def test_stable_cycle_detected_as_stable(self):
        reports = analyze_cycles(compile_description(STABLE_CYCLE).values())
        cycles_with_x = [r for r in reports if ("b", "x") in r.nodes]
        assert cycles_with_x
        assert all(r.stable for r in cycles_with_x)

    def test_unstable_cycle_detected(self):
        reports = analyze_cycles(compile_description(UNSTABLE).values())
        assert any(not r.stable for r in reports)

    def test_check_cycles_raises_on_unstable(self):
        with pytest.raises(CyclicDependencyError):
            check_cycles(compile_description(UNSTABLE).values())

    def test_check_cycles_passes_stable(self):
        reports = check_cycles(compile_description(STABLE_CYCLE).values())
        assert reports  # cycles exist, but all stable

    def test_paper_mappings_are_fixpoint_safe(self, engine):
        reports = check_cycles(compile_description(DESCRIPTIONS).values())
        assert all(r.stable for r in reports)

    def test_runtime_unstable_conflict_surfaces(self):
        engine = ClosureEngine(compile_description(UNSTABLE).values())
        result = engine.propagate("a", {"x2": "seed", "k": "1"}, changed=["x2", "k"])
        assert result.unstable_conflicts()

    def test_strict_engine_raises_at_runtime(self):
        engine = ClosureEngine(compile_description(UNSTABLE).values(), strict=True)
        with pytest.raises(FixpointError):
            engine.propagate("a", {"x2": "seed", "k": "1"}, changed=["x2", "k"])
