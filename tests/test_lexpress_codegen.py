"""Tests for the lexpress compilation tier: the constant-folding /
dead-branch optimizer, closure code generation, the process-wide
compiled-rule cache, ``run_rule`` mode dispatch, and the MetaComm
``lexpress_mode`` wiring (docs/LEXPRESS_COMPILER.md)."""

import pytest

from repro.lexpress import (
    CodeObject,
    LexpressCompileError,
    LexpressDivergenceError,
    LexpressRuntimeError,
    Op,
    compile_closure,
    compile_expr,
    execute,
    lower_attrs,
    rule_cache,
    run_rule,
    tokenize,
)
from repro.lexpress.codegen import (
    CompiledClosure,
    CompiledRuleCache,
    _CFrame,
    verified_compile,
)
from repro.lexpress.parser import Parser


def expr_code(source: str, optimize: bool = True) -> CodeObject:
    parser = Parser(tokenize(source))
    return compile_expr(parser.parse_expr(), source, optimize=optimize)


def ops(code: CodeObject) -> list[Op]:
    return [ins.op for ins in code.instructions]


def run_closure(code: CodeObject, attrs=None, value=None):
    closure = compile_closure(code)
    frame = _CFrame()
    frame.value = value
    return closure.fn(lower_attrs(attrs or {}), frame)


def broken_code() -> CodeObject:
    """Verifier-rejected (LX102) but interpreter-executable code."""
    code = CodeObject("broken")
    code.emit(Op.PUSH, code.const("a"))
    code.emit(Op.PUSH, code.const("b"))
    code.emit(Op.RETURN)
    return code


# -- constant folding / dead-branch elimination ------------------------------


class TestOptimizer:
    def test_pure_calls_fold_to_a_push(self):
        code = expr_code('concat("a", upper("bc"))')
        assert ops(code) == [Op.PUSH, Op.RETURN]
        assert code.consts == ["aBC"]

    def test_folding_can_be_disabled(self):
        code = expr_code('concat("a", upper("bc"))', optimize=False)
        assert Op.CALL in ops(code)

    def test_failing_calls_are_left_for_the_runtime(self):
        # Wrong arity: folding must not swallow the author's error site.
        code = expr_code('substr("abc")')
        assert Op.CALL in ops(code)
        with pytest.raises(LexpressRuntimeError):
            execute(code, {})

    def test_literal_compare_folds(self):
        code = expr_code('("a" == "a")')
        assert ops(code) == [Op.PUSH, Op.RETURN]
        assert code.consts == [True]

    def test_boolop_short_circuits_at_compile_time(self):
        false_and = expr_code('(("a" == "b") and upper(Name))')
        assert ops(false_and) == [Op.PUSH, Op.RETURN]
        assert false_and.consts == [False]
        true_or = expr_code('(("a" == "a") or upper(Name))')
        assert ops(true_or) == [Op.PUSH, Op.RETURN]
        assert true_or.consts == [True]

    def test_surviving_right_side_is_coerced_to_bool(self):
        # true and X  ->  X under double-NOT: the result stays a bool.
        code = expr_code('(("a" == "a") and Name)')
        assert execute(code, {"Name": ["x"]}) is True
        assert execute(code, {}) is False

    def test_literal_right_side_never_simplifies(self):
        # Name's evaluation (and group writes) must be kept.
        code = expr_code('(Name and "x")')
        assert Op.LOAD_ATTR in ops(code)

    def test_literal_subject_match_resolves_to_the_hit_body(self):
        code = expr_code('match upper("ab") { /^A/ => "hit"; _ => "miss"; }')
        assert ops(code) == [Op.PUSH, Op.RETURN]
        assert code.consts == ["hit"]

    def test_literal_subject_miss_resolves_to_the_wildcard(self):
        code = expr_code('match "zz" { /^A/ => "hit"; _ => "miss"; }')
        assert ops(code) == [Op.PUSH, Op.RETURN]
        assert code.consts == ["miss"]

    def test_null_subject_match_is_the_wildcard_body(self):
        code = expr_code('match null { /^a/ => "x"; _ => "y"; }')
        assert ops(code) == [Op.PUSH, Op.RETURN]
        assert code.consts == ["y"]

    def test_groupref_blocks_hit_body_substitution(self):
        # The hit writes frame.groups, and $1 reads them: the match
        # machinery must survive even though the subject is a literal.
        code = expr_code('match "abc" { /^(a)/ => $1; _ => "miss"; }')
        assert Op.MATCH_RE in ops(code)
        assert execute(code, {}) == "a"

    def test_bad_regex_still_fails_compilation(self):
        # Even on an arm a literal subject would never reach.
        with pytest.raises(LexpressCompileError):
            expr_code('match "zz" { /(/ => "x"; _ => "y"; }')

    def test_bool_subject_prunes_impossible_table_keys(self):
        code = expr_code(
            'table present(Name) { "True" => "yes"; "emp" => "no"; }'
        )
        assert Op.TABLE_CONST in ops(code)
        (table, default), = [
            c for c in code.consts if isinstance(c, tuple)
        ]
        assert set(table) == {"True"}
        assert default is None

    def test_all_literal_table_interns_to_table_const(self):
        code = expr_code('table Kind { "emp" => "1"; "ctr" => "2"; }')
        assert ops(code) == [Op.LOAD_ATTR, Op.TABLE_CONST, Op.RETURN]
        assert execute(code, {"Kind": ["ctr"]}) == "2"
        assert execute(code, {"Kind": ["xxx"]}) is None

    def test_computed_table_body_keeps_the_match_chain(self):
        code = expr_code('table Kind { "emp" => upper(Name); }')
        assert Op.TABLE_CONST not in ops(code)
        assert Op.MATCH_LIT in ops(code)


# -- closure code generation -------------------------------------------------


class TestCodegen:
    def test_single_block_closures_are_straight_line(self):
        closure = compile_closure(expr_code('concat(Name, "x")'))
        assert "while True" not in closure.source
        assert "stack" not in closure.source

    def test_branchy_code_uses_block_dispatch(self):
        closure = compile_closure(
            expr_code('match Name { /^a/ => "x"; _ => "y"; }')
        )
        assert "while True" in closure.source

    @pytest.mark.parametrize(
        "source, attrs, value",
        [
            ('concat(upper(Name), "-", Room)', {"Name": ["ab"], "Room": ["2B"]}, None),
            ('match Name { /^(\\w+), ?(\\w+)$/ => concat($2, " ", $1); _ => Name; }',
             {"Name": ["Doe, John"]}, None),
            ('match Name { /^z/ => "x"; _ => trim(Name); }', {"Name": [" a "]}, None),
            ('table Kind { "emp" => "1"; "ctr" => "2"; }', {"Kind": ["ctr"]}, None),
            ('table Kind { "emp" => "1"; }', {"Kind": ["xxx"]}, None),
            ('each Member => upper(value)', {"Member": ["a", "b"]}, None),
            ('alt(Name, Room)', {"Room": ["2B"]}, None),
            ('(present(Name) and not empty(Room))', {"Name": ["x"], "Room": []}, None),
            ('count(Member)', {"Member": ["a", "b", "c"]}, None),
            ('concat(table Kind { "emp" => "1"; }, $0)', {"Kind": ["emp"]}, None),
        ],
    )
    def test_closures_match_the_interpreter(self, source, attrs, value):
        code = expr_code(source)
        interpreted = execute(code, attrs, value)
        compiled = run_closure(code, attrs, value)
        assert compiled == interpreted
        assert type(compiled) is type(interpreted)

    def test_runtime_errors_match_the_interpreter(self):
        code = expr_code("substr(Name)")  # wrong arity, not foldable
        with pytest.raises(LexpressRuntimeError):
            execute(code, {"Name": ["x"]})
        with pytest.raises(LexpressRuntimeError):
            run_closure(code, {"Name": ["x"]})

    def test_empty_code_cannot_be_lowered(self):
        with pytest.raises(LexpressRuntimeError):
            compile_closure(CodeObject("partition:always"))

    def test_fingerprint_travels_with_the_closure(self):
        code = expr_code('upper(Name)')
        assert compile_closure(code).fingerprint == code.fingerprint()


class TestVerifiedCompile:
    def test_clean_code_compiles(self):
        closure = verified_compile(expr_code('upper(Name)'), "m", "a")
        assert isinstance(closure, CompiledClosure)
        assert closure.name == "m.a"

    def test_rejected_code_returns_none(self):
        assert verified_compile(broken_code(), "m", "a") is None


# -- the compiled-rule cache -------------------------------------------------


class TestCompiledRuleCache:
    def test_miss_then_hit(self):
        cache = CompiledRuleCache()
        code = expr_code('upper(Name)')
        first = cache.get_or_compile("m", "a", code)
        second = cache.get_or_compile("m", "a", code)
        assert first is second
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert stats["compiles"] == 1 and stats["entries"] == 1

    def test_recompiling_a_rule_invalidates_the_entry(self):
        cache = CompiledRuleCache()
        old = expr_code('upper(Name)')
        stale = cache.get_or_compile("m", "a", old)
        # The description was recompiled: same key, different byte code.
        new = expr_code('lower(Name)')
        fresh = cache.get_or_compile("m", "a", new)
        assert fresh is not stale
        assert fresh.fingerprint == new.fingerprint() != stale.fingerprint
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["compiles"] == 2
        frame = _CFrame()
        assert fresh.fn(lower_attrs({"Name": ["Ab"]}), frame) == "ab"

    def test_rejections_are_cached_and_served_without_reverifying(self):
        cache = CompiledRuleCache()
        code = broken_code()
        assert cache.get_or_compile("m", "a", code) is None
        assert cache.get_or_compile("m", "a", code) is None
        stats = cache.stats()
        assert stats["rejected"] == 1 and stats["hits"] == 1

    def test_listeners_see_every_compile_outcome(self):
        cache = CompiledRuleCache()
        events = []
        cache.subscribe(events.append)
        cache.get_or_compile("m", "good", expr_code('upper(Name)'))
        cache.get_or_compile("m", "good", expr_code('upper(Name)'))  # hit
        cache.get_or_compile("m", "bad", broken_code())
        assert [(e["attribute"], e["status"]) for e in events] == [
            ("good", "compiled"),
            ("bad", "rejected"),
        ]
        assert all(e["mapping"] == "m" and "fingerprint" in e for e in events)
        cache.unsubscribe(events.append)

    def test_unsubscribed_listeners_go_quiet(self):
        cache = CompiledRuleCache()
        events = []
        listener = events.append
        cache.subscribe(listener)
        cache.unsubscribe(listener)
        cache.get_or_compile("m", "a", expr_code('upper(Name)'))
        assert events == []

    def test_clear_resets_entries_and_counters(self):
        cache = CompiledRuleCache()
        cache.get_or_compile("m", "a", expr_code('upper(Name)'))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 0


# -- run_rule mode dispatch --------------------------------------------------


@pytest.fixture
def fresh_cache(monkeypatch):
    cache = CompiledRuleCache()
    monkeypatch.setattr("repro.lexpress.codegen._CACHE", cache)
    return cache


class TestRunRule:
    def test_default_mode_is_plain_interpretation(self, fresh_cache):
        code = expr_code('upper(Name)')
        assert run_rule(code, {"Name": ["ab"]}) == "AB"
        assert len(fresh_cache) == 0

    def test_compiled_mode_serves_the_cache(self, fresh_cache):
        code = expr_code('concat(upper(Name), "-", Room)')
        attrs = {"Name": ["ab"], "Room": ["2B"]}
        result = run_rule(
            code, attrs, mapping="m", attribute="a", mode="compiled"
        )
        assert result == execute(code, attrs)
        assert fresh_cache.stats()["compiles"] == 1

    def test_compiled_mode_falls_back_on_rejected_code(self, fresh_cache):
        code = broken_code()
        result = run_rule(
            code, {}, mapping="m", attribute="a", mode="compiled"
        )
        assert result == execute(code, {}) == "b"
        assert fresh_cache.stats()["rejected"] == 1

    def test_verify_mode_agrees_on_honest_closures(self, fresh_cache):
        code = expr_code('upper(Name)')
        result = run_rule(
            code, {"Name": ["ab"]}, mapping="m", attribute="a", mode="verify"
        )
        assert result == "AB"

    def test_verify_mode_raises_on_divergence(self, fresh_cache):
        code = expr_code('upper(Name)')
        lying = CompiledClosure(
            name="m.a",
            fn=lambda attrs, frame: "WRONG",
            source="",
            fingerprint=code.fingerprint(),
        )
        fresh_cache._entries[("m", "a")] = (code.fingerprint(), lying)
        with pytest.raises(LexpressDivergenceError) as exc_info:
            run_rule(
                code, {"Name": ["ab"]},
                mapping="m", attribute="a", mode="verify",
            )
        error = exc_info.value
        assert error.mapping == "m" and error.attribute == "a"
        assert error.interpreted == "AB" and error.compiled == "WRONG"
        assert "divergence" in str(error)

    def test_unknown_mode_is_an_error(self, fresh_cache):
        with pytest.raises(ValueError, match="lexpress_mode"):
            run_rule(expr_code('Name'), {}, mode="bogus")


# -- MetaComm wiring ---------------------------------------------------------


def _provision(system):
    from repro.schemas import PERSON_CLASSES

    system.connection().add(
        "cn=Jo Smith,o=Marketing,o=Lucent",
        {
            "objectClass": list(PERSON_CLASSES),
            "cn": "Jo Smith",
            "sn": "Smith",
            "definityExtension": "4100",
        },
    )


class TestMetaCommModes:
    def test_invalid_mode_is_rejected_at_boot(self):
        from repro.core import MetaComm, MetaCommConfig

        with pytest.raises(ValueError, match="lexpress_mode"):
            MetaComm(MetaCommConfig(lexpress_mode="bogus"))

    def test_compiled_mode_provisions_and_journals(self):
        from repro.core import MetaComm, MetaCommConfig
        from repro.obs.events import LEXPRESS_COMPILED

        # A warm process-wide cache would serve hits and journal nothing.
        rule_cache().clear()
        system = MetaComm(
            MetaCommConfig(
                organizations=("Marketing",), lexpress_mode="compiled"
            )
        )
        try:
            _provision(system)
            assert system.pbx().station("4100") is not None
            assert system.consistent()
            compiles = system.obs.journal.events(LEXPRESS_COMPILED)
            assert compiles
            assert all(
                e.attributes["status"] == "compiled" for e in compiles
            )
        finally:
            system.close()

    def test_verify_mode_runs_the_workload_without_divergence(self):
        # The acceptance gate: the shipped mapping library produces
        # identical values from both engines across a full provisioning
        # fan-out (any disagreement raises LexpressDivergenceError).
        from repro.core import MetaComm, MetaCommConfig

        rule_cache().clear()
        system = MetaComm(
            MetaCommConfig(
                organizations=("Marketing",), lexpress_mode="verify"
            )
        )
        try:
            _provision(system)
            system.terminal().execute("change station 4100 room 2B-110")
            assert system.consistent()
            assert rule_cache().stats()["compiles"] > 0
        finally:
            system.close()

    def test_close_unsubscribes_the_compile_listener(self):
        from repro.core import MetaComm, MetaCommConfig

        before = len(rule_cache()._listeners)
        system = MetaComm(
            MetaCommConfig(
                organizations=("Marketing",), lexpress_mode="compiled"
            )
        )
        assert len(rule_cache()._listeners) == before + 1
        system.close()
        assert len(rule_cache()._listeners) == before

    def test_interpret_mode_leaves_mappings_alone(self):
        from repro.core import MetaComm, MetaCommConfig

        with MetaComm(MetaCommConfig(organizations=("Marketing",))) as system:
            assert all(
                m.lexpress_mode is None for m in system.mappings.values()
            )
