"""Fuzz tests: randomly generated lexpress programs must compile and
execute without crashing the toolchain (errors are fine, crashes are not),
and deterministic expressions must be referentially transparent."""

import hypothesis.strategies as st
from hypothesis import given, settings

import pytest

from repro.lexpress import (
    LexpressError,
    TokenType,
    compile_closure,
    compile_expr,
    execute,
    lower_attrs,
    tokenize,
)
from repro.lexpress.codegen import _CFrame
from repro.lexpress.parser import Parser

ATTRS = ["Name", "Extension", "Room", "COS"]
IDENT = st.sampled_from(ATTRS)
STRING = st.text(alphabet="abc 0-9,", max_size=8).map(
    lambda s: '"' + s.replace('"', "") + '"'
)

# Grammar-directed expression source generator.
expr_source = st.deferred(
    lambda: st.one_of(
        STRING,
        IDENT,
        st.sampled_from(["null", "true", "false", "1234"]),
        st.tuples(st.sampled_from(["upper", "lower", "trim", "digits"]), expr_source).map(
            lambda t: f"{t[0]}({t[1]})"
        ),
        st.tuples(expr_source, expr_source).map(
            lambda t: f"concat({t[0]}, {t[1]})"
        ),
        st.tuples(expr_source, expr_source).map(lambda t: f"alt({t[0]}, {t[1]})"),
        st.tuples(IDENT, STRING).map(lambda t: f"prefix({t[0]}, {t[1]})"),
        st.tuples(IDENT, expr_source, expr_source).map(
            lambda t: "match " + t[0] + " { /^a/ => " + t[1] + "; _ => " + t[2] + "; }"
        ),
        st.tuples(IDENT, STRING, expr_source).map(
            lambda t: "table " + t[0] + " { " + t[1] + " => " + t[2] + "; }"
        ),
        st.tuples(IDENT, expr_source).map(
            lambda t: f"each {t[0]} => concat(value, {t[1]})"
        ),
        st.tuples(expr_source, expr_source).map(lambda t: f"({t[0]} == {t[1]})"),
    )
)

record = st.fixed_dictionaries(
    {},
    optional={
        name: st.lists(st.text(alphabet="abc4 ", max_size=6), max_size=3)
        for name in ATTRS
    },
)


def _compile(source: str):
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    assert parser.peek().type is TokenType.EOF
    return compile_expr(expr, source)


@given(source=expr_source, attrs=record)
@settings(max_examples=200, deadline=None)
def test_random_programs_never_crash(source, attrs):
    try:
        code = _compile(source)
    except LexpressError:
        return  # rejected inputs are fine; crashes are not
    try:
        result = execute(code, attrs)
    except LexpressError:
        return
    assert result is None or isinstance(result, (str, bool, list))
    if isinstance(result, list):
        assert all(isinstance(v, str) for v in result)


@given(source=expr_source, attrs=record)
@settings(max_examples=100, deadline=None)
def test_execution_is_deterministic(source, attrs):
    try:
        code = _compile(source)
        first = execute(code, attrs)
        second = execute(code, attrs)
    except LexpressError:
        return
    assert first == second


@given(source=expr_source, attrs=record)
@settings(max_examples=200, deadline=None)
def test_compiled_closures_match_the_interpreter(source, attrs):
    """The differential property behind lexpress_mode="verify": for any
    program, the synthesized closure and the interpreter must agree on
    the value *and its type* — or fail with the same error family."""
    try:
        code = _compile(source)
    except LexpressError:
        return
    closure = compile_closure(code)
    low = lower_attrs(attrs)
    frame = _CFrame()
    try:
        interpreted = execute(code, low, canonical=True)
    except LexpressError:
        with pytest.raises(LexpressError):
            closure.fn(low, frame)
        return
    compiled = closure.fn(low, frame)
    assert compiled == interpreted
    assert type(compiled) is type(interpreted)


@given(source=expr_source)
@settings(max_examples=100, deadline=None)
def test_compilation_is_pure(source):
    """Compiling twice yields equivalent code objects."""
    try:
        first = _compile(source)
        second = _compile(source)
    except LexpressError:
        return
    assert [str(i) for i in first.instructions] == [
        str(i) for i in second.instructions
    ]
    assert first.deps == second.deps
