"""Tests for the lexpress language front end: lexer, parser, compiler,
interpreter, and the runtime function library."""

import pytest
from hypothesis import given, strategies as st

from repro.lexpress import (
    LexpressCompileError,
    LexpressRuntimeError,
    LexpressSyntaxError,
    TokenType,
    compile_expr,
    execute,
    known_functions,
    parse,
    tokenize,
    truthy,
)
from repro.lexpress.ast import Call
from repro.lexpress.bytecode import Op
from repro.lexpress.parser import Parser


def eval_expr(text: str, attrs=None, value=None):
    """Parse, compile and execute a standalone expression."""
    parser = Parser(tokenize(text))
    expr = parser.parse_expr()
    assert parser.peek().type is TokenType.EOF
    return execute(compile_expr(expr, text), attrs or {}, value=value)


class TestLexer:
    def test_basic_tokens(self):
        types = [t.type for t in tokenize("mapping m { map a = b; }")]
        assert types == [
            TokenType.KEYWORD,
            TokenType.IDENT,
            TokenType.LBRACE,
            TokenType.KEYWORD,
            TokenType.IDENT,
            TokenType.ASSIGN,
            TokenType.IDENT,
            TokenType.SEMI,
            TokenType.RBRACE,
            TokenType.EOF,
        ]

    def test_comments_skipped(self):
        tokens = tokenize("a # the rest is a comment\nb")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_string_escapes(self):
        (token, _eof) = tokenize(r'"a\"b\n\t\\"')
        assert token.text == 'a"b\n\t\\'

    def test_unterminated_string(self):
        with pytest.raises(LexpressSyntaxError):
            tokenize('"never closed')

    def test_bad_escape(self):
        with pytest.raises(LexpressSyntaxError):
            tokenize(r'"\q"')

    def test_regex_literal(self):
        (token, _eof) = tokenize(r"/^(\w+), (\w+)$/")
        assert token.type is TokenType.REGEX
        assert token.text == r"^(\w+), (\w+)$"

    def test_regex_with_escaped_slash(self):
        (token, _eof) = tokenize(r"/a\/b/")
        assert token.text == r"a\/b"

    def test_group_token(self):
        (token, _eof) = tokenize("$12")
        assert token.type is TokenType.GROUP
        assert token.text == "12"

    def test_dollar_without_digits(self):
        with pytest.raises(LexpressSyntaxError):
            tokenize("$x")

    def test_two_char_operators(self):
        types = [t.type for t in tokenize("=> -> == != =")][:-1]
        assert types == [
            TokenType.ARROW,
            TokenType.MAPSTO,
            TokenType.EQEQ,
            TokenType.NEQ,
            TokenType.ASSIGN,
        ]

    def test_underscore_alone_vs_ident(self):
        assert tokenize("_")[0].type is TokenType.UNDERSCORE
        assert tokenize("_x")[0].type is TokenType.IDENT

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(LexpressSyntaxError):
            tokenize("@")

    def test_eof_terminates(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("   # just trivia")[-1].type is TokenType.EOF


class TestParser:
    def test_minimal_mapping(self):
        desc = parse("mapping m { source a; target b; }")
        (decl,) = desc.mappings
        assert decl.name == "m"
        assert (decl.source, decl.target) == ("a", "b")

    def test_full_mapping(self):
        desc = parse(
            """
            mapping m {
                source pbx; target ldap;
                key Extension -> definityExtension;
                originator lastUpdater;
                map cn = Name;
                partition when prefix(Extension, "4");
            }
            """
        )
        (decl,) = desc.mappings
        assert decl.key_source == "Extension"
        assert decl.key_target == "definityExtension"
        assert decl.originator == "lastUpdater"
        assert len(decl.rules) == 1
        assert decl.partition is not None

    def test_multiple_mappings(self):
        desc = parse(
            "mapping a { source x; target y; } mapping b { source y; target x; }"
        )
        assert [m.name for m in desc.mappings] == ["a", "b"]

    def test_missing_source_rejected(self):
        with pytest.raises(LexpressSyntaxError, match="source"):
            parse("mapping m { target b; }")

    def test_duplicate_rule_rejected(self):
        with pytest.raises(LexpressSyntaxError, match="duplicate"):
            parse("mapping m { source a; target b; map x = y; map x = z; }")

    def test_empty_description_rejected(self):
        with pytest.raises(LexpressSyntaxError):
            parse("   ")

    def test_wildcard_must_be_last(self):
        with pytest.raises(LexpressSyntaxError):
            parse(
                'mapping m { source a; target b;'
                ' map x = match y { _ => "d"; "k" => "v"; }; }'
            )

    def test_default_must_be_last(self):
        with pytest.raises(LexpressSyntaxError):
            parse(
                'mapping m { source a; target b;'
                ' map x = table y { default => "d"; "k" => "v"; }; }'
            )

    def test_call_argument_lists(self):
        desc = parse('mapping m { source a; target b; map x = concat(p, "-", q); }')
        rule = desc.mappings[0].rules[0]
        assert isinstance(rule.expr, Call)
        assert len(rule.expr.args) == 3

    def test_bad_statement(self):
        with pytest.raises(LexpressSyntaxError):
            parse("mapping m { source a; target b; bogus x; }")


class TestExpressions:
    def test_literal_and_attr(self):
        assert eval_expr('"hello"') == "hello"
        assert eval_expr("Name", {"Name": ["Ada"]}) == "Ada"
        assert eval_expr("Name", {}) is None

    def test_attr_case_insensitive(self):
        assert eval_expr("name", {"NAME": ["x"]}) == "x"

    def test_concat(self):
        assert eval_expr('concat("a", "b", "c")') == "abc"
        assert eval_expr('concat("a", Missing)') is None

    def test_case_functions(self):
        assert eval_expr('upper("aBc")') == "ABC"
        assert eval_expr('lower("aBc")') == "abc"
        assert eval_expr('trim("  x ")') == "x"

    def test_substr(self):
        assert eval_expr('substr("telephone", 4)') == "phone"
        assert eval_expr('substr("telephone", 0, 3)') == "tel"
        with pytest.raises(LexpressRuntimeError):
            eval_expr('substr("x", "bad")')

    def test_replace_and_digits(self):
        assert eval_expr('replace("a-b-c", "-", ".")') == "a.b.c"
        assert eval_expr('digits("+1 (908) 582-9000")') == "19085829000"

    def test_pad(self):
        assert eval_expr('pad("42", 5)') == "00042"
        assert eval_expr('pad("123456", 3)') == "123456"

    def test_predicates(self):
        assert eval_expr('prefix("+1 908", "+1")') is True
        assert eval_expr('suffix("file.txt", ".txt")') is True
        assert eval_expr('contains("hello", "ell")') is True
        assert eval_expr('matches("4100", "^[0-9]+$")') is True
        assert eval_expr("present(Name)", {"Name": ["x"]}) is True
        assert eval_expr("present(Name)", {}) is False
        assert eval_expr("empty(Name)", {}) is True

    def test_alt_picks_first_non_null(self):
        attrs = {"b": ["bee"]}
        assert eval_expr("alt(a, b, c)", attrs) == "bee"
        assert eval_expr("alt(a, c)", attrs) is None
        assert eval_expr('alt(a, "fallback")', attrs) == "fallback"

    def test_ifnull(self):
        assert eval_expr('ifnull(Name, "anon")', {}) == "anon"
        assert eval_expr('ifnull(Name, "anon")', {"Name": ["x"]}) == "x"

    def test_multivalue_functions(self):
        attrs = {"mail": ["a@x", "b@x"]}
        assert eval_expr('join(split("a,b,c", ","), "-")') == "a-b-c"
        assert eval_expr('first(split("a,b", ","))') == "a"
        assert eval_expr('last(split("a,b", ","))') == "b"
        assert eval_expr("count(mail)", attrs) == "2"
        assert eval_expr("count(missing)") == "0"

    def test_each(self):
        attrs = {"Lines": ["4100", "4101"]}
        result = eval_expr('each Lines => concat("+1 908 582 ", value)', attrs)
        assert result == ["+1 908 582 4100", "+1 908 582 4101"]

    def test_each_missing_attr_gives_empty(self):
        assert eval_expr('each Lines => value', {}) == []

    def test_each_skips_null_results(self):
        attrs = {"Lines": ["x1", "2"]}
        result = eval_expr(
            'each Lines => match value { /^([0-9]+)$/ => $1; }', attrs
        )
        assert result == ["2"]

    def test_match_regex_groups(self):
        result = eval_expr(
            'match Name { /^(\\w+), (\\w+)$/ => concat($2, " ", $1); _ => Name; }',
            {"Name": ["Doe, John"]},
        )
        assert result == "John Doe"

    def test_match_falls_through_to_wildcard(self):
        result = eval_expr(
            'match Name { /^(\\w+), (\\w+)$/ => $2; _ => upper(Name); }',
            {"Name": ["single"]},
        )
        assert result == "SINGLE"

    def test_match_no_arm_gives_null(self):
        assert eval_expr('match Name { "x" => "y"; }', {"Name": ["z"]}) is None

    def test_match_literal_arm(self):
        assert eval_expr('match v { "a" => "1"; "b" => "2"; }', {"v": ["b"]}) == "2"

    def test_match_special_case_refinement(self):
        # Paper: "Patterns allow mappings to be refined incrementally with
        # a list of special cases."
        expr = """match Name {
            "N/A"                 => null;
            /^\\s*$/              => null;
            /^(\\w+), (\\w+)$/    => concat($2, " ", $1);
            _                     => trim(Name);
        }"""
        assert eval_expr(expr, {"Name": ["N/A"]}) is None
        assert eval_expr(expr, {"Name": ["   "]}) is None
        assert eval_expr(expr, {"Name": ["Doe, Jane"]}) == "Jane Doe"
        assert eval_expr(expr, {"Name": ["  Cher "]}) == "Cher"

    def test_match_null_subject_no_crash(self):
        assert eval_expr('match Missing { /x/ => "y"; _ => "w"; }', {}) == "w"

    def test_table(self):
        expr = 'table COS { "1" => "gold"; "2" => "silver"; default => "std"; }'
        assert eval_expr(expr, {"COS": ["1"]}) == "gold"
        assert eval_expr(expr, {"COS": ["2"]}) == "silver"
        assert eval_expr(expr, {"COS": ["9"]}) == "std"

    def test_table_without_default_gives_null(self):
        assert eval_expr('table v { "a" => "1"; }', {"v": ["zzz"]}) is None

    def test_comparisons(self):
        assert eval_expr('"a" == "a"') is True
        assert eval_expr('"a" != "b"') is True
        assert eval_expr("Name == null", {}) is True
        assert eval_expr("Name == null", {"Name": ["x"]}) is False

    def test_boolean_operators(self):
        attrs = {"a": ["1"]}
        assert eval_expr('present(a) and prefix("xy", "x")', attrs) is True
        assert eval_expr("present(a) and present(b)", attrs) is False
        assert eval_expr("present(b) or present(a)", attrs) is True
        assert eval_expr("not present(b)", attrs) is True

    def test_boolean_short_circuit(self):
        # `and` must not evaluate the right side when left is false:
        # substr with a bad index would raise.
        assert (
            eval_expr('present(b) and substr("x", "bad") == "y"', {}) is False
        )

    def test_unknown_function_rejected_at_compile_time(self):
        with pytest.raises(LexpressCompileError, match="unknown function"):
            eval_expr("frobnicate(x)")

    def test_bad_regex_rejected_at_compile_time(self):
        with pytest.raises(LexpressCompileError, match="bad regex"):
            eval_expr('match v { /(/ => "x"; }')

    def test_wrong_arity_is_runtime_error(self):
        with pytest.raises(LexpressRuntimeError):
            eval_expr('upper("a", "b", "c")')

    def test_nested_expressions(self):
        attrs = {"Name": ["doe, john"], "Ext": ["4100"]}
        result = eval_expr(
            'upper(concat(first(split(Name, ", ")), "-", Ext))', attrs
        )
        assert result == "DOE-4100"

    def test_parenthesized(self):
        assert eval_expr('("x")') == "x"


class TestDependencies:
    def test_deps_collected(self):
        parser = Parser(tokenize('concat(A, match B { /x/ => C; _ => "k"; })'))
        code = compile_expr(parser.parse_expr())
        assert code.deps == {"a", "b", "c"}

    def test_each_deps_include_attribute_and_body(self):
        parser = Parser(tokenize("each Lines => concat(Prefix, value)"))
        code = compile_expr(parser.parse_expr())
        assert code.deps == {"lines", "prefix"}

    def test_literal_has_no_deps(self):
        parser = Parser(tokenize('"const"'))
        assert compile_expr(parser.parse_expr()).deps == frozenset()


class TestBytecode:
    def test_disassembly_is_printable(self):
        # An all-literal table interns into one TABLE_CONST probe.
        parser = Parser(tokenize('table v { "a" => "1"; default => "d"; }'))
        code = compile_expr(parser.parse_expr(), "demo")
        text = code.disassemble()
        assert "demo" in text
        assert "TABLE_CONST" in text
        assert "<table" in text

    def test_disassembly_of_computed_table_keeps_match_chain(self):
        # A computed entry body defeats interning: the sequential
        # MATCH_LIT chain survives.
        parser = Parser(tokenize('table v { "a" => upper(n); default => "d"; }'))
        code = compile_expr(parser.parse_expr(), "demo")
        assert "MATCH_LIT" in code.disassemble()

    def test_const_interning(self):
        parser = Parser(tokenize('concat(Name, "x", "x", "x")'))
        code = compile_expr(parser.parse_expr())
        assert code.consts.count("x") == 1

    def test_constant_folding_of_pure_calls(self):
        parser = Parser(tokenize('concat("x", "x", "x")'))
        code = compile_expr(parser.parse_expr())
        assert [ins.op for ins in code.instructions] == [Op.PUSH, Op.RETURN]
        assert code.consts == ["xxx"]


class TestTruthy:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, False),
            (True, True),
            (False, False),
            ("", False),
            ("x", True),
            ([], False),
            (["x"], True),
        ],
    )
    def test_table(self, value, expected):
        assert truthy(value) is expected


@given(st.text(alphabet=st.characters(blacklist_characters='"\\\n\r',
                                      blacklist_categories=("Cs", "Cc")),
               max_size=20))
def test_string_literal_round_trip(text):
    quoted = '"' + text + '"'
    assert eval_expr(quoted) == text


@given(st.lists(st.text(alphabet="abc123", min_size=1, max_size=5), max_size=5))
def test_each_identity_preserves_values(values):
    assert eval_expr("each V => value", {"V": values}) == values


def test_function_registry_is_stable():
    names = known_functions()
    assert "concat" in names and "alt" in names and "split" in names
    assert names == sorted(names)
