"""Tests for compiled mappings: translation, partitioning, Originator."""

import pytest

from repro.lexpress import (
    LexpressCompileError,
    MappingInstance,
    PartitionConstraint,
    TargetAction,
    UpdateDescriptor,
    UpdateOp,
    compile_description,
    compile_mapping,
    route,
)

PBX_TO_LDAP = """
mapping pbx_to_ldap {
    source pbx;
    target ldap;
    key Extension -> definityExtension;

    map telephoneNumber = concat("+1 908 582 ", Extension);
    map cn = match Name {
        /^(\\w+), ?(\\w+)$/ => concat($2, " ", $1);
        _ => Name;
    };
    map roomNumber = Room;
    map lastUpdater = "pbx";
}
"""

LDAP_TO_PBX = """
mapping ldap_to_pbx {
    source ldap;
    target pbx;
    key definityExtension -> Extension;
    originator lastUpdater;

    map Extension = alt(definityExtension, digits(substr(telephoneNumber, 10)));
    map Name = match cn {
        /^(\\w+) (\\w+)$/ => concat($2, ", ", $1);
        _ => cn;
    };
    map Room = roomNumber;
    partition when prefix(Extension, "4");
}
"""


@pytest.fixture
def pbx_to_ldap():
    return compile_mapping(PBX_TO_LDAP)


@pytest.fixture
def ldap_to_pbx():
    return compile_mapping(LDAP_TO_PBX)


class TestCompileDescription:
    def test_two_mappings_in_one_file(self):
        mappings = compile_description(PBX_TO_LDAP + LDAP_TO_PBX)
        assert set(mappings) == {"pbx_to_ldap", "ldap_to_pbx"}

    def test_duplicate_names_rejected(self):
        with pytest.raises(LexpressCompileError):
            compile_description(PBX_TO_LDAP + PBX_TO_LDAP)

    def test_compile_mapping_requires_exactly_one(self):
        with pytest.raises(LexpressCompileError):
            compile_mapping(PBX_TO_LDAP + LDAP_TO_PBX)

    def test_key_rule_auto_added(self, pbx_to_ldap):
        image = pbx_to_ldap.image({"Extension": "4100"})
        assert image["definityExtension"] == ["4100"]

    def test_deps_aggregate(self, pbx_to_ldap):
        assert pbx_to_ldap.deps == {"extension", "name", "room"}


class TestImage:
    def test_full_image(self, pbx_to_ldap):
        image = pbx_to_ldap.image(
            {"Extension": "4100", "Name": "Doe, John", "Room": "2B-110"}
        )
        assert image == {
            "definityExtension": ["4100"],
            "telephoneNumber": ["+1 908 582 4100"],
            "cn": ["John Doe"],
            "roomNumber": ["2B-110"],
            "lastUpdater": ["pbx"],
        }

    def test_unset_attributes_omitted(self, pbx_to_ldap):
        image = pbx_to_ldap.image({"Extension": "4100"})
        assert "cn" not in image
        assert "roomNumber" not in image

    def test_none_in_none_out(self, pbx_to_ldap):
        assert pbx_to_ldap.image(None) is None

    def test_alternate_mapping_fallback(self, ldap_to_pbx):
        # definityExtension missing: falls back to digits of telephoneNumber.
        image = ldap_to_pbx.image(
            {"telephoneNumber": "+1 908 582 4321", "cn": "Jo Po"}
        )
        assert image["Extension"] == ["4321"]


class TestTranslateBasics:
    def test_wrong_source_rejected(self, pbx_to_ldap):
        descriptor = UpdateDescriptor(UpdateOp.ADD, "ldap", "x", new={"cn": "X"})
        with pytest.raises(LexpressCompileError):
            pbx_to_ldap.translate(descriptor)

    def test_add(self, pbx_to_ldap):
        update = pbx_to_ldap.translate(
            UpdateDescriptor(
                UpdateOp.ADD, "pbx", "4100",
                new={"Extension": "4100", "Name": "Doe, John"},
            )
        )
        assert update.action is TargetAction.ADD
        assert update.key == "4100"
        assert update.attributes["cn"] == ["John Doe"]

    def test_delete(self, pbx_to_ldap):
        update = pbx_to_ldap.translate(
            UpdateDescriptor(
                UpdateOp.DELETE, "pbx", "4100", old={"Extension": "4100"}
            )
        )
        assert update.action is TargetAction.DELETE
        assert update.key == "4100"

    def test_modify_changed_only(self, pbx_to_ldap):
        update = pbx_to_ldap.translate(
            UpdateDescriptor(
                UpdateOp.MODIFY, "pbx", "4100",
                old={"Extension": "4100", "Name": "Doe, John", "Room": "1A"},
                new={"Extension": "4100", "Name": "Doe, John", "Room": "2B"},
            )
        )
        assert update.action is TargetAction.MODIFY
        assert update.changed == {"roomNumber": ["2B"]}
        assert not update.removed

    def test_modify_key_change_updates_dependents(self, pbx_to_ldap):
        update = pbx_to_ldap.translate(
            UpdateDescriptor(
                UpdateOp.MODIFY, "pbx", "4100",
                old={"Extension": "4100", "Name": "Doe, John"},
                new={"Extension": "4200", "Name": "Doe, John"},
            )
        )
        assert update.old_key == "4100"
        assert update.key == "4200"
        assert update.changed["definityExtension"] == ["4200"]
        assert update.changed["telephoneNumber"] == ["+1 908 582 4200"]

    def test_modify_attribute_removal(self, pbx_to_ldap):
        update = pbx_to_ldap.translate(
            UpdateDescriptor(
                UpdateOp.MODIFY, "pbx", "4100",
                old={"Extension": "4100", "Room": "1A"},
                new={"Extension": "4100"},
            )
        )
        assert update.removed == ("roomNumber",)

    def test_irrelevant_modify_returns_none(self, pbx_to_ldap):
        descriptor = UpdateDescriptor(
            UpdateOp.MODIFY, "pbx", "4100",
            old={"Extension": "4100", "Port": "01A0101"},
            new={"Extension": "4100", "Port": "01A0202"},
        )
        assert pbx_to_ldap.translate(descriptor) is None

    def test_noop_modify_skips(self, pbx_to_ldap):
        descriptor = UpdateDescriptor(
            UpdateOp.MODIFY, "pbx", "4100",
            old={"Extension": "4100", "Name": "A, B"},
            new={"Extension": "4100", "Name": "A, B", "Port": "x"},
        )
        update = pbx_to_ldap.translate(descriptor)
        # Port is unmapped; Name unchanged — nothing to do at the target.
        assert update is None or update.action is TargetAction.SKIP


class TestPartitionRouting:
    """Section 4.2's migration matrix, driven end to end."""

    def test_route_matrix(self):
        assert route(False, True) is TargetAction.ADD
        assert route(True, True) is TargetAction.MODIFY
        assert route(True, False) is TargetAction.DELETE
        assert route(False, False) is TargetAction.SKIP

    def test_declared_partition_filters_adds(self, ldap_to_pbx):
        inside = UpdateDescriptor(
            UpdateOp.ADD, "ldap", "4100", new={"definityExtension": "4100", "cn": "A B"}
        )
        outside = UpdateDescriptor(
            UpdateOp.ADD, "ldap", "5100", new={"definityExtension": "5100", "cn": "A B"}
        )
        assert ldap_to_pbx.translate(inside).action is TargetAction.ADD
        assert ldap_to_pbx.translate(outside).action is TargetAction.SKIP

    def test_migration_between_partitions(self, ldap_to_pbx):
        """A phone-number change that moves the person to another PBX
        becomes a DELETE at the old PBX and an ADD at the new one."""
        pbx_a = MappingInstance(
            ldap_to_pbx, "ldap", "pbx-a",
            PartitionConstraint.compile('prefix(Extension, "41")'),
        )
        pbx_b = MappingInstance(
            ldap_to_pbx, "ldap", "pbx-b",
            PartitionConstraint.compile('prefix(Extension, "42")'),
        )
        move = UpdateDescriptor(
            UpdateOp.MODIFY, "ldap", "4100",
            old={"definityExtension": "4100", "cn": "Jo Po"},
            new={"definityExtension": "4200", "cn": "Jo Po"},
        )
        at_a = pbx_a.translate(move)
        at_b = pbx_b.translate(move)
        assert at_a.action is TargetAction.DELETE
        assert at_a.key == "4100"
        assert at_b.action is TargetAction.ADD
        assert at_b.key == "4200"
        assert at_b.target == "pbx-b"

    def test_modify_within_partition(self, ldap_to_pbx):
        instance = MappingInstance(
            ldap_to_pbx, "ldap", "pbx-a",
            PartitionConstraint.compile('prefix(Extension, "41")'),
        )
        update = instance.translate(
            UpdateDescriptor(
                UpdateOp.MODIFY, "ldap", "4100",
                old={"definityExtension": "4100", "cn": "Jo Po"},
                new={"definityExtension": "4100", "cn": "Jo Quo"},
            )
        )
        assert update.action is TargetAction.MODIFY
        assert update.changed == {"Name": ["Quo, Jo"]}

    def test_never_ours_skips(self, ldap_to_pbx):
        instance = MappingInstance(
            ldap_to_pbx, "ldap", "pbx-a",
            PartitionConstraint.compile('prefix(Extension, "41")'),
        )
        update = instance.translate(
            UpdateDescriptor(
                UpdateOp.MODIFY, "ldap", "9000",
                old={"definityExtension": "9000", "cn": "A B"},
                new={"definityExtension": "9001", "cn": "A B"},
            )
        )
        assert update.action is TargetAction.SKIP


class TestOriginator:
    """Section 5.4: conditional updates for reapplication."""

    def test_origin_repo_match_is_conditional(self, ldap_to_pbx):
        descriptor = UpdateDescriptor(
            UpdateOp.ADD, "ldap", "4100",
            new={"definityExtension": "4100", "cn": "A B"},
            origin="pbx",
        )
        assert ldap_to_pbx.translate(descriptor).conditional

    def test_originator_attribute_match_is_conditional(self, ldap_to_pbx):
        descriptor = UpdateDescriptor(
            UpdateOp.ADD, "ldap", "4100",
            new={"definityExtension": "4100", "cn": "A B", "lastUpdater": "pbx"},
        )
        assert ldap_to_pbx.translate(descriptor).conditional

    def test_fresh_update_is_not_conditional(self, ldap_to_pbx):
        descriptor = UpdateDescriptor(
            UpdateOp.ADD, "ldap", "4100",
            new={"definityExtension": "4100", "cn": "A B", "lastUpdater": "wba"},
        )
        assert not ldap_to_pbx.translate(descriptor).conditional

    def test_forward_mapping_stamps_last_updater(self, pbx_to_ldap):
        image = pbx_to_ldap.image({"Extension": "4100"})
        assert image["lastUpdater"] == ["pbx"]


class TestPartitionConstraintUnit:
    def test_compile_and_evaluate(self):
        constraint = PartitionConstraint.compile('prefix(tn, "+1 908")')
        assert constraint.satisfied_by({"tn": ["+1 908 582 9000"]})
        assert not constraint.satisfied_by({"tn": ["+1 212 555 0100"]})
        assert not constraint.satisfied_by(None)
        assert not constraint.satisfied_by({})

    def test_compound_predicate(self):
        constraint = PartitionConstraint.compile(
            'prefix(ext, "4") and not prefix(ext, "49")'
        )
        assert constraint.satisfied_by({"ext": ["4100"]})
        assert not constraint.satisfied_by({"ext": ["4900"]})

    def test_trailing_garbage_rejected(self):
        with pytest.raises(Exception):
            PartitionConstraint.compile('prefix(a, "x") bogus')

    def test_deps_exposed(self):
        constraint = PartitionConstraint.compile('prefix(tn, "+1") and present(cn)')
        assert constraint.deps == {"tn", "cn"}
