"""Tests for repro.obs.lockwitness: the runtime half of the LX5xx tier.

The witness wraps locks in order-recording proxies and validates every
acquisition pair against a graph seeded with the static analyzer's
edges.  These tests drive the proxies directly with synthetic locks —
including a deliberate A->B / B->A inversion — then check the full
integration path (``MetaCommConfig(lock_witness=True)``) on a live
system under concurrent load.
"""

import threading

from repro.core import MetaComm, MetaCommConfig
from repro.obs.events import EventJournal, WITNESS_VIOLATION
from repro.obs.export import render_prometheus
from repro.obs.lockwitness import LockWitness, witness_system
from repro.obs.metrics import MetricsRegistry
from repro.schemas import PERSON_CLASSES


def make_pair(witness):
    a = witness.wrap("A._lock", threading.Lock())
    b = witness.wrap("B._lock", threading.Lock())
    return a, b


class TestOrderRecording:
    def test_consistent_order_records_edge_without_violation(self):
        witness = LockWitness()
        a, b = make_pair(witness)
        for _ in range(3):
            with a:
                with b:
                    pass
        assert witness.observed_pairs() == [("A._lock", "B._lock")]
        assert witness.violations() == []
        assert witness.ok

    def test_reversed_order_is_a_violation(self):
        witness = LockWitness()
        a, b = make_pair(witness)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        (violation,) = witness.violations()
        assert violation.held == "B._lock"
        assert violation.acquired == "A._lock"
        assert violation.known_path == ("A._lock", "B._lock")
        assert violation.acquire_stack and violation.held_stack
        assert not witness.ok

    def test_violation_does_not_extend_the_graph(self):
        # The reversed pair must not become "allowed": a later thread
        # repeating the reversal is a fresh witness, not normal order.
        witness = LockWitness()
        a, b = make_pair(witness)
        with a, b:
            pass
        with b, a:
            pass
        with b, a:
            pass
        assert witness.observed_pairs() == [("A._lock", "B._lock")]
        assert len(witness.violations()) == 2

    def test_transitive_reversal_detected_through_path(self):
        # A->B and B->C are recorded; C->A contradicts the A->...->C path.
        witness = LockWitness()
        a = witness.wrap("A._lock", threading.Lock())
        b = witness.wrap("B._lock", threading.Lock())
        c = witness.wrap("C._lock", threading.Lock())
        with a, b:
            pass
        with b, c:
            pass
        with c, a:
            pass
        (violation,) = witness.violations()
        assert violation.known_path == ("A._lock", "B._lock", "C._lock")

    def test_static_seed_pairs_forbid_the_reverse_immediately(self):
        witness = LockWitness(static_order=[("A._lock", "B._lock")])
        a, b = make_pair(witness)
        # First-ever runtime acquisition already contradicts the static
        # graph — no prior observation needed.
        with b, a:
            pass
        assert len(witness.violations()) == 1
        # Static seeds are not "observed" edges.
        assert witness.observed_pairs() == []
        assert ("A._lock", "B._lock") in witness.pairs()

    def test_reentrant_acquire_records_no_edges(self):
        witness = LockWitness()
        r = witness.wrap("R._lock", threading.RLock())
        b = witness.wrap("B._lock", threading.Lock())
        with r:
            with r:  # re-entrant: must not create an R->R edge
                with b:
                    pass
        assert witness.observed_pairs() == [("R._lock", "B._lock")]
        assert witness.violations() == []

    def test_separate_threads_do_not_see_each_others_stacks(self):
        witness = LockWitness()
        a, b = make_pair(witness)
        a.acquire()  # held on the main thread only

        def other():
            with b:
                pass

        worker = threading.Thread(target=other)
        worker.start()
        worker.join()
        a.release()
        assert witness.observed_pairs() == []


class TestConditionModel:
    def test_wait_releases_the_lock_for_edge_purposes(self):
        witness = LockWitness()
        cond = witness.wrap("Q._cond", threading.Condition())
        other = witness.wrap("M._lock", threading.Lock())

        def waker():
            with cond:
                cond.notify_all()

        with cond:
            threading.Timer(0.01, waker).start()
            cond.wait(timeout=1.0)
            # Reacquired after the wait: edges resume from here.
            with other:
                pass
        assert ("Q._cond", "M._lock") in witness.observed_pairs()
        assert witness.violations() == []

    def test_foreign_lock_held_across_wait_still_edges(self):
        witness = LockWitness()
        outer = witness.wrap("Outer._lock", threading.Lock())
        cond = witness.wrap("Q._cond", threading.Condition())
        with outer:
            with cond:
                cond.wait(timeout=0.01)
        assert ("Outer._lock", "Q._cond") in witness.observed_pairs()

    def test_wait_for_suspends_like_wait(self):
        witness = LockWitness()
        cond = witness.wrap("Q._cond", threading.Condition())
        with cond:
            assert cond.wait_for(lambda: True, timeout=1.0)
        assert witness.violations() == []


class TestReporting:
    def test_violation_journals_event_with_both_stacks(self):
        journal = EventJournal()
        witness = LockWitness(journal=journal)
        a, b = make_pair(witness)
        with a, b:
            pass
        with b, a:
            pass
        (event,) = [
            e for e in journal.tail(10) if e.kind == WITNESS_VIOLATION
        ]
        assert event.attributes["held"] == "B._lock"
        assert event.attributes["acquired"] == "A._lock"
        assert "acquire" in event.attributes["acquire_stack"]
        assert event.attributes["held_stack"]

    def test_metrics_count_acquisitions_edges_and_violations(self):
        registry = MetricsRegistry()
        witness = LockWitness(registry=registry)
        a, b = make_pair(witness)
        with a, b:
            pass
        with b, a:
            pass
        text = render_prometheus(registry)
        assert (
            'metacomm_lockwitness_acquisitions_total{lock="A._lock"} 2'
            in text
        )
        assert "metacomm_lockwitness_violations_total 1" in text
        assert "metacomm_lockwitness_edges 1" in text

    def test_wrap_is_idempotent(self):
        witness = LockWitness()
        lock = threading.Lock()
        proxy = witness.wrap("A._lock", lock)
        assert witness.wrap("A._lock", proxy) is proxy

    def test_proxies_repr_and_locked(self):
        witness = LockWitness()
        lock = witness.wrap("A._lock", threading.Lock())
        assert "A._lock" in repr(lock)
        assert not lock.locked()
        with lock:
            assert lock.locked()


class TestSystemIntegration:
    def person(self, ext):
        return {
            "objectClass": list(PERSON_CLASSES),
            "cn": f"User {ext}",
            "sn": ext,
            "definityExtension": ext,
        }

    def test_config_flag_wires_the_witness(self):
        with MetaComm(MetaCommConfig(lock_witness=True)) as system:
            assert isinstance(system.lock_witness, LockWitness)
            system.connection().add(
                "cn=User 4100,o=Lucent", self.person("4100")
            )
            assert system.consistent()
            assert system.lock_witness.violations() == []
            text = system.metrics_text()
            assert "metacomm_lockwitness_acquisitions_total" in text

    def test_witness_defaults_off(self):
        with MetaComm(MetaCommConfig()) as system:
            assert system.lock_witness is None

    def test_concurrent_adds_on_lanes_stay_clean(self):
        config = MetaCommConfig(
            organizations=("Marketing", "Sales"),
            coordinator_lanes=2,
            lock_witness=True,
        )
        with MetaComm(config) as system:
            system.um.start()
            try:
                orgs = ("Marketing", "Sales")
                errors = []

                def add(index):
                    ext = str(4100 + index)
                    org = orgs[index % 2]
                    dn = f"cn=User {ext},o={org},o=Lucent"
                    try:
                        system.connection().add(dn, self.person(ext))
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)

                threads = [
                    threading.Thread(target=add, args=(i,))
                    for i in range(8)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert errors == []
                assert system.consistent()
            finally:
                system.um.stop()
            assert system.lock_witness.violations() == []

    def test_witness_system_seeds_from_static_order(self):
        from repro.analysis.concur import static_lock_order

        with MetaComm(MetaCommConfig(lock_witness=True)) as system:
            pairs = set(system.lock_witness.pairs())
            assert set(static_lock_order()) <= pairs

    def test_witness_system_respects_prebuilt_witness(self):
        witness = LockWitness()
        with MetaComm(MetaCommConfig()) as system:
            assert witness_system(system, witness) is witness
