"""Tests for the LTAP gateway: triggers, locks, quiesce, connections."""

import threading

import pytest

from repro.ldap import (
    DN,
    BusyError,
    ChangeType,
        LdapConnection,
    LdapError,
    LdapServer,
    Modification,
    ResultCode,
    Scope,
    Session,
)
from repro.ltap import (
    SUPPRESS_TRIGGERS,
    ConnectionClosedError,
    ConnectionManager,
    LockManager,
    LtapGateway,
    Trigger,
    TriggerTiming,
)


@pytest.fixture
def server():
    s = LdapServer(["o=Lucent"])
    LdapConnection(s).add("o=Lucent", {"objectClass": "organization", "o": "Lucent"})
    return s


@pytest.fixture
def gateway(server):
    return LtapGateway(server, lock_timeout=0.2)


@pytest.fixture
def conn(gateway):
    return LdapConnection(gateway)


class TestTransparency:
    def test_gateway_looks_like_a_server(self, conn):
        conn.add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        assert conn.get("cn=X,o=Lucent").first("cn") == "X"
        assert conn.search("o=Lucent", Scope.SUB, "(cn=X)")

    def test_errors_pass_through(self, conn):
        with pytest.raises(LdapError) as err:
            conn.delete("cn=Ghost,o=Lucent")
        assert err.value.code is ResultCode.NO_SUCH_OBJECT

    def test_reads_counted_not_triggered(self, gateway, conn):
        fired = []
        gateway.register_trigger(Trigger(action=fired.append))
        conn.search("o=Lucent")
        assert gateway.statistics["reads_forwarded"] >= 1
        assert not fired


class TestTriggers:
    def test_after_trigger_sees_images(self, gateway, conn):
        events = []
        gateway.register_trigger(Trigger(action=events.append))
        conn.add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        conn.modify("cn=X,o=Lucent", [Modification.replace("sn", "S")])
        add_event, mod_event = events
        assert add_event.change_type is ChangeType.ADD
        assert add_event.before is None
        assert add_event.after.first("cn") == "X"
        assert mod_event.before.has("sn") is False
        assert mod_event.after.first("sn") == "S"

    def test_modify_rdn_event_reports_new_entry(self, gateway, conn):
        events = []
        gateway.register_trigger(Trigger(action=events.append))
        conn.add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        conn.modify_rdn("cn=X,o=Lucent", "cn=Y")
        rename = events[-1]
        assert rename.change_type is ChangeType.MODIFY_RDN
        assert str(rename.after.dn) == "cn=Y,o=Lucent"

    def test_before_trigger_vetoes(self, gateway, conn):
        def veto(event):
            raise LdapError(ResultCode.UNWILLING_TO_PERFORM, "vetoed by policy")

        gateway.register_trigger(
            Trigger(action=veto, timing=TriggerTiming.BEFORE)
        )
        with pytest.raises(LdapError) as err:
            conn.add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        assert err.value.code is ResultCode.UNWILLING_TO_PERFORM
        assert not conn.exists("cn=X,o=Lucent")

    def test_trigger_scoping_by_base(self, gateway, conn):
        events = []
        conn.add("o=HR,o=Lucent", {"objectClass": "organization", "o": "HR"})
        gateway.register_trigger(Trigger(action=events.append, base="o=HR,o=Lucent"))
        conn.add("cn=In,o=HR,o=Lucent", {"objectClass": "person", "cn": "In"})
        conn.add("cn=Out,o=Lucent", {"objectClass": "person", "cn": "Out"})
        assert [str(e.dn) for e in events] == ["cn=In,o=HR,o=Lucent"]

    def test_trigger_scoping_by_filter(self, gateway, conn):
        events = []
        gateway.register_trigger(
            Trigger(action=events.append, filter="(objectClass=person)")
        )
        conn.add("cn=P,o=Lucent", {"objectClass": "person", "cn": "P"})
        conn.add("o=Org,o=Lucent", {"objectClass": "organization", "o": "Org"})
        assert len(events) == 1

    def test_trigger_scoping_by_op(self, gateway, conn):
        events = []
        gateway.register_trigger(
            Trigger(action=events.append, ops=frozenset({ChangeType.DELETE}))
        )
        conn.add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        conn.delete("cn=X,o=Lucent")
        assert [e.change_type for e in events] == [ChangeType.DELETE]

    def test_unregister(self, gateway, conn):
        events = []
        gateway.register_trigger(Trigger(action=events.append, name="t"))
        gateway.unregister_trigger("t")
        conn.add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        assert not events

    def test_duplicate_name_rejected(self, gateway):
        gateway.register_trigger(Trigger(action=lambda e: None, name="dup"))
        with pytest.raises(ValueError):
            gateway.register_trigger(Trigger(action=lambda e: None, name="dup"))

    def test_suppressed_session_fires_no_triggers(self, gateway, server):
        events = []
        gateway.register_trigger(Trigger(action=events.append))
        conn = LdapConnection(gateway)
        conn.session.state[SUPPRESS_TRIGGERS] = True
        conn.add("cn=Quiet,o=Lucent", {"objectClass": "person", "cn": "Quiet"})
        assert not events
        assert server.get("cn=Quiet,o=Lucent")

    def test_failed_update_fires_no_after_trigger(self, gateway, conn):
        events = []
        gateway.register_trigger(Trigger(action=events.append))
        with pytest.raises(LdapError):
            conn.delete("cn=Ghost,o=Lucent")
        assert not events


class TestLocking:
    def test_lock_held_during_trigger(self, gateway, conn):
        observed = []

        def action(event):
            observed.append(gateway.locks.is_locked(event.dn))

        gateway.register_trigger(Trigger(action=action))
        conn.add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        assert observed == [True]
        assert not gateway.locks.is_locked(DN.parse("cn=X,o=Lucent"))

    def test_conflicting_update_blocks_until_timeout(self, gateway, conn):
        release = threading.Event()
        entered = threading.Event()

        def slow_action(event):
            entered.set()
            release.wait(2)

        gateway.register_trigger(
            Trigger(action=slow_action, ops=frozenset({ChangeType.ADD}))
        )

        t = threading.Thread(
            target=lambda: conn.add(
                "cn=X,o=Lucent", {"objectClass": "person", "cn": "X"}
            )
        )
        t.start()
        assert entered.wait(2)
        other = LdapConnection(gateway)
        with pytest.raises(LdapError) as err:
            other.modify("cn=X,o=Lucent", [Modification.replace("sn", "S")])
        assert err.value.code is ResultCode.BUSY
        release.set()
        t.join()

    def test_same_session_reenters_lock(self, gateway, server):
        # The UM pattern: the trigger action updates the same entry using
        # the triggering session, re-entering the held lock.
        inner_done = []

        def action(event):
            if event.change_type is ChangeType.ADD:
                inner = LdapConnection(gateway)
                inner.session = event.session  # re-use the locked session
                inner.modify(event.dn, [Modification.replace("sn", "set-by-um")])
                inner_done.append(True)

        gateway.register_trigger(Trigger(action=action))
        conn = LdapConnection(gateway)
        conn.add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
        assert inner_done
        assert server.get("cn=X,o=Lucent").first("sn") == "set-by-um"

    def test_independent_entries_do_not_contend(self, gateway):
        barrier = threading.Barrier(2, timeout=2)

        def action(event):
            barrier.wait()  # both triggers must be inside simultaneously

        gateway.register_trigger(Trigger(action=action))
        errors = []

        def add(name):
            try:
                LdapConnection(gateway).add(
                    f"cn={name},o=Lucent", {"objectClass": "person", "cn": name}
                )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=add, args=(n,)) for n in ("A", "B")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestQuiesce:
    def test_quiesce_blocks_other_sessions(self, gateway, conn):
        owner = Session()
        with gateway.quiesce(owner):
            with pytest.raises(LdapError) as err:
                conn.add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})
            assert err.value.code is ResultCode.BUSY
        conn.add("cn=X,o=Lucent", {"objectClass": "person", "cn": "X"})

    def test_quiesce_owner_may_update(self, gateway):
        owner_conn = LdapConnection(gateway)
        with gateway.quiesce(owner_conn.session):
            owner_conn.add("cn=S,o=Lucent", {"objectClass": "person", "cn": "S"})
        assert owner_conn.exists("cn=S,o=Lucent")

    def test_reads_allowed_during_quiesce(self, gateway, conn):
        with gateway.quiesce(Session()):
            assert conn.search("o=Lucent")

    def test_nested_quiesce_rejected(self, gateway):
        with gateway.quiesce(Session()):
            with pytest.raises(BusyError):
                gateway.quiesce(Session(), timeout=0.05)

    def test_release_by_non_owner_rejected(self, gateway):
        with gateway.quiesce(Session()):
            with pytest.raises(RuntimeError):
                gateway.release_quiesce(Session())


class TestLockManagerUnit:
    def test_reentrant_same_owner(self):
        locks = LockManager()
        dn = DN.parse("cn=X,o=L")
        owner = object()
        locks.acquire(dn, owner)
        locks.acquire(dn, owner)
        locks.release(dn, owner)
        assert locks.is_locked(dn)
        locks.release(dn, owner)
        assert not locks.is_locked(dn)

    def test_timeout_raises_busy(self):
        locks = LockManager(default_timeout=0.05)
        dn = DN.parse("cn=X,o=L")
        locks.acquire(dn, "a")
        with pytest.raises(BusyError):
            locks.acquire(dn, "b")

    def test_release_not_held_raises(self):
        locks = LockManager()
        with pytest.raises(RuntimeError):
            locks.release(DN.parse("cn=X,o=L"), "a")

    def test_waiter_proceeds_after_release(self):
        locks = LockManager(default_timeout=2)
        dn = DN.parse("cn=X,o=L")
        locks.acquire(dn, "a")
        got = threading.Event()

        def waiter():
            locks.acquire(dn, "b")
            got.set()

        t = threading.Thread(target=waiter)
        t.start()
        locks.release(dn, "a")
        assert got.wait(2)
        t.join()
        assert locks.holder(dn) == "b"

    def test_statistics(self):
        locks = LockManager(default_timeout=0.01)
        dn = DN.parse("cn=X,o=L")
        locks.acquire(dn, "a")
        with pytest.raises(BusyError):
            locks.acquire(dn, "b")
        assert locks.statistics["acquired"] == 1
        assert locks.statistics["contended"] == 1
        assert locks.statistics["timeouts"] == 1


class TestConnections:
    def test_single_shot_allows_one_event(self):
        seen = []
        manager = ConnectionManager(lambda e, c: seen.append((e, c)))
        conn = manager.open()
        conn.send("event-1")  # type: ignore[arg-type]
        with pytest.raises(ConnectionClosedError):
            conn.send("event-2")  # type: ignore[arg-type]
        assert len(seen) == 1
        assert conn.closed

    def test_persistent_allows_sequences(self):
        seen = []
        manager = ConnectionManager(lambda e, c: seen.append(e))
        with manager.open(persistent=True) as conn:
            for i in range(5):
                conn.send(f"event-{i}")  # type: ignore[arg-type]
        assert len(seen) == 5
        assert conn.closed
        with pytest.raises(ConnectionClosedError):
            conn.send("late")  # type: ignore[arg-type]

    def test_statistics(self):
        manager = ConnectionManager(lambda e, c: None)
        manager.open().send("x")  # type: ignore[arg-type]
        with manager.open(persistent=True) as p:
            p.send("y")  # type: ignore[arg-type]
        assert manager.statistics == {
            "single_shot": 1,
            "persistent": 1,
            "events": 2,
        }


class TestLibraryMode:
    def test_gateway_mode_reads_cost_um_nothing(self, server):
        work = []
        gateway = LtapGateway(server, library_mode=False, read_tax=lambda: work.append(1))
        LdapConnection(gateway).search("o=Lucent")
        assert not work

    def test_library_mode_reads_tax_the_um(self, server):
        work = []
        gateway = LtapGateway(server, library_mode=True, read_tax=lambda: work.append(1))
        LdapConnection(gateway).search("o=Lucent")
        assert len(work) == 1
