"""Unit tests for the virtual-mediator baseline (paper section 3)."""

import pytest

from repro.core import MediatorError, MetaComm, MetaCommConfig, VirtualMediator
from repro.schemas import PERSON_CLASSES


def person_attrs(cn, sn, **extra):
    attrs = {"objectClass": list(PERSON_CLASSES), "cn": cn, "sn": sn}
    attrs.update(extra)
    return attrs


@pytest.fixture
def system():
    system = MetaComm(MetaCommConfig())
    conn = system.connection()
    conn.add(
        "cn=John Doe,o=Lucent",
        person_attrs("John Doe", "Doe", definityExtension="4100",
                     definityRoom="2B"),
    )
    conn.add(
        "cn=Jill Lu,o=Lucent",
        person_attrs("Jill Lu", "Lu", definityExtension="4200"),
    )
    return system


@pytest.fixture
def mediator(system):
    return VirtualMediator(system.um.bindings, system.suffix)


class TestVirtualView:
    def test_joins_devices_per_person(self, mediator):
        (entry,) = mediator.search("(definityExtension=4100)")
        # PBX data and MP data merged into one virtual entry.
        assert entry.first("definityRoom") == "2B"
        assert entry.first("mpMailboxId", "").startswith("MB-")
        assert entry.first("telephoneNumber") == "+1 908 582 4100"

    def test_filter_evaluation(self, mediator):
        hits = mediator.search("(&(objectClass=person)(definityRoom=2B))")
        assert [e.first("cn") for e in hits] == ["John Doe"]
        assert mediator.search("(definityRoom=9Z)") == []

    def test_names_derived_from_pbx(self, mediator):
        (entry,) = mediator.search("(definityExtension=4200)")
        assert entry.first("cn") == "Jill Lu"
        assert str(entry.dn) == "cn=Jill Lu,o=Lucent"

    def test_reads_are_always_fresh(self, system, mediator):
        """The mediator's one advantage: it cannot be stale."""
        # Sabotage the device silently (no notification).
        system.pbx()._records["4100"]["Room"] = "SNEAKY"
        (entry,) = mediator.search("(definityExtension=4100)")
        assert entry.first("definityRoom") == "SNEAKY"
        # ... whereas the materialized view still shows the old value
        # until resynchronization.
        (stale,) = system.find_person("(definityExtension=4100)")
        assert stale.first("definityRoom") == "2B"

    def test_source_outage_fails_query(self, system, mediator):
        system.messaging.available = False
        with pytest.raises(MediatorError, match="messaging"):
            mediator.search("(definityExtension=4100)")

    def test_statistics(self, mediator):
        mediator.search("(objectClass=person)")
        assert mediator.statistics["queries"] == 1
        assert mediator.statistics["source_dumps"] == 2
        assert mediator.statistics["records_mapped"] == 4  # 2 stations + 2 subs
