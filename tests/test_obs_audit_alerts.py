"""The alert-rule engine and the background consistency auditor —
including the acceptance scenario: deliberate device/directory drift is
detected, alerted, and journalled within one audit cycle, then clears
after a sync repair."""

import pytest

from repro.obs import (
    AlertEngine,
    AlertRule,
    AlertRuleError,
    EventJournal,
    MetricsRegistry,
    default_rules,
)


class TestAlertRuleParsing:
    def test_simple_threshold(self):
        rule = AlertRule.parse("r", "metacomm_queue_depth > 10")
        assert rule.metric == "metacomm_queue_depth"
        assert rule.op == ">"
        assert rule.threshold == 10.0
        assert rule.labels == ()
        assert rule.for_cycles == 1

    def test_label_selector_and_sustain(self):
        rule = AlertRule.parse(
            "r", 'metacomm_device_health{device="pbx-west"} >= 1 for 3'
        )
        assert rule.labels == (("device", "pbx-west"),)
        assert rule.for_cycles == 3
        assert rule.matches({"device": "pbx-west"})
        assert not rule.matches({"device": "pbx-east"})
        # No selector matches everything.
        assert AlertRule.parse("r2", "m > 0").matches({"device": "x"})

    def test_units_suffix_and_float_threshold(self):
        rule = AlertRule.parse("r", "metacomm_queue_oldest_age_seconds > 2.5s")
        assert rule.threshold == 2.5

    def test_all_comparators(self):
        for op in (">", ">=", "<", "<=", "==", "!="):
            rule = AlertRule.parse("r", f"m {op} 1")
            assert rule.op == op
        assert AlertRule.parse("r", "m < 1").breached(0.5)
        assert not AlertRule.parse("r", "m != 1").breached(1.0)

    def test_expr_round_trips(self):
        for expr in (
            "m > 5",
            'm{device="pbx"} >= 1 for 3',
            "m == 0",
        ):
            rule = AlertRule.parse("r", expr)
            assert AlertRule.parse("r", rule.expr) == rule

    @pytest.mark.parametrize(
        "expr",
        [
            "",
            "just words",
            "m >",
            "m ~ 5",
            "m > 5 for",
            'm{=bad} > 1',
        ],
    )
    def test_rejects_malformed(self, expr):
        with pytest.raises(AlertRuleError):
            AlertRule.parse("r", expr)

    def test_default_rules_parse_and_are_unique(self):
        rules = default_rules()
        names = [r.name for r in rules]
        assert len(set(names)) == len(names)
        assert "device-unreachable" in names


class TestAlertEngine:
    def engine(self, *exprs, journal=None):
        registry = MetricsRegistry()
        rules = [
            AlertRule.parse(f"rule-{i}", expr)
            for i, expr in enumerate(exprs)
        ]
        return AlertEngine(registry, journal=journal, rules=rules), registry

    def test_raise_and_clear_transitions(self):
        journal = EventJournal()
        engine, registry = self.engine(
            "metacomm_queue_depth > 2", journal=journal
        )
        depth = registry.gauge("metacomm_queue_depth", "h")
        depth.set(1)
        assert engine.evaluate() == []
        depth.set(5)
        (alert,) = engine.evaluate()
        assert alert.rule == "rule-0"
        assert alert.value == 5
        assert engine.is_active("rule-0")
        assert registry.value("metacomm_alerts_active", rule="rule-0") == 1
        # Still breaching: no duplicate raise.
        engine.evaluate()
        assert len(journal.events(kind="alert.raised")) == 1
        depth.set(0)
        assert engine.evaluate() == []
        assert journal.last("alert.cleared").attributes["rule"] == "rule-0"
        assert registry.value("metacomm_alerts_active", rule="rule-0") == 0
        assert (
            registry.get("metacomm_alerts_fired_total").value_for(
                rule="rule-0"
            )
            == 1
        )

    def test_for_cycles_requires_sustained_breach(self):
        engine, registry = self.engine("m >= 1 for 3")
        gauge = registry.gauge("m", "h")
        gauge.set(1)
        assert engine.evaluate() == []
        assert engine.evaluate() == []
        (alert,) = engine.evaluate()
        assert alert.cycles == 3
        # A dip resets the pending count.
        gauge.set(0)
        engine.evaluate()
        gauge.set(1)
        assert engine.evaluate() == []

    def test_rule_without_selector_fires_per_child(self):
        journal = EventJournal()
        engine, registry = self.engine(
            "metacomm_device_health >= 2", journal=journal
        )
        health = registry.gauge(
            "metacomm_device_health", "h", labelnames=("device",)
        )
        health.labels(device="pbx-west").set(2)
        health.labels(device="pbx-east").set(0)
        (alert,) = engine.evaluate()
        assert alert.labels == {"device": "pbx-west"}
        # The east device going dark fires a second, independent instance.
        health.labels(device="pbx-east").set(2)
        alerts = engine.evaluate()
        assert len(alerts) == 2
        assert registry.value("metacomm_alerts_active", rule="rule-0") == 2
        # One recovers: the other stays active.
        health.labels(device="pbx-west").set(0)
        (remaining,) = engine.evaluate()
        assert remaining.labels == {"device": "pbx-east"}

    def test_selector_rule_ignores_other_children(self):
        engine, registry = self.engine('m{device="a"} > 0')
        gauge = registry.gauge("m", "h", labelnames=("device",))
        gauge.labels(device="b").set(9)
        assert engine.evaluate() == []
        gauge.labels(device="a").set(1)
        (alert,) = engine.evaluate()
        assert alert.labels == {"device": "a"}

    def test_missing_metric_is_not_a_breach(self):
        engine, _ = self.engine("no_such_metric > 0")
        assert engine.evaluate() == []

    def test_add_and_remove_rules(self):
        engine, registry = self.engine()
        rule = AlertRule.parse("extra", "m > 0")
        engine.add_rule(rule)
        with pytest.raises(AlertRuleError):
            engine.add_rule(AlertRule.parse("extra", "m > 1"))
        registry.gauge("m", "h").set(1)
        engine.evaluate()
        assert engine.is_active("extra")
        engine.remove_rule("extra")
        assert not engine.is_active("extra")
        assert engine.rules == []


class TestConsistencyAuditor:
    @pytest.fixture
    def system(self):
        from repro.core import MetaComm, MetaCommConfig

        with MetaComm(MetaCommConfig()) as system:
            yield system

    def add_person(self, system, cn="Ann Field", extension="4100"):
        from repro.schemas import PERSON_CLASSES

        system.connection().add(
            f"cn={cn},o=Lucent",
            {
                "objectClass": list(PERSON_CLASSES),
                "cn": cn,
                "sn": cn.split()[-1],
                "definityExtension": extension,
            },
        )

    def test_clean_cycle_reports_ok(self, system):
        self.add_person(system)
        report = system.auditor.run_cycle(full=True)
        assert report.ok
        assert report.mismatch_count == 0
        assert set(report.probed) == {b.name for b in system.um.bindings}
        assert report.queue_depth == 0
        registry = system.obs.registry
        assert registry.value("metacomm_audit_cycles_total") == 1
        assert registry.value("metacomm_audit_last_mismatches") == 0
        event = system.obs.journal.last("audit.cycle")
        assert event.attributes["mismatches"] == 0

    def test_round_robin_probes_one_binding_per_cycle(self, system):
        bindings = [b.name for b in system.um.bindings]
        assert len(bindings) >= 2
        probed = []
        for _ in range(len(bindings)):
            report = system.auditor.run_cycle()
            assert len(report.probed) == 1
            probed.extend(report.probed)
        # Round-robin covers every binding before repeating.
        assert sorted(probed) == sorted(bindings)

    def test_cycle_refreshes_lag_and_staleness(self, system):
        self.add_person(system)
        report = system.auditor.run_cycle(full=True)
        assert report.last_serial >= 1
        pbx = system.pbx().name
        assert report.device_lag[pbx] == 0
        registry = system.obs.registry
        assert registry.value(
            "metacomm_device_last_applied_lag", device=pbx
        ) == 0
        assert registry.value("metacomm_queue_oldest_age_seconds") == 0.0

    def test_drift_alerts_within_one_cycle(self, system):
        """Acceptance: a deliberate device-side mutation (bypassing DDU
        via the UM agent) raises the audit-mismatch alert and journals
        the drift within ONE audit cycle — while the system stays live."""
        from repro.core import UM_AGENT

        self.add_person(system)
        assert system.consistent()

        # Operator surgery on the device: writes attributed to the UM
        # agent never generate DDU notifications, so the directory is
        # silently out of date.
        pbx = system.pbx()
        pbx.modify("4100", {"name": "Imposter"}, agent=UM_AGENT)

        report = system.auditor.run_cycle(full=True)
        assert not report.ok
        assert pbx.name in report.mismatches
        assert system.alerts.is_active("audit-mismatch")
        registry = system.obs.registry
        assert registry.value("metacomm_audit_last_mismatches") > 0
        assert registry.value(
            "metacomm_alerts_active", rule="audit-mismatch"
        ) == 1
        mismatch = system.obs.journal.last("audit.mismatch")
        assert mismatch.attributes["device"] == pbx.name
        assert mismatch.attributes["problems"]
        raised = system.obs.journal.last("alert.raised")
        assert raised.attributes["rule"] == "audit-mismatch"

        # Repair by pushing directory state back to the device; the next
        # cycle clears the alert and journals the clear.
        system.sync.push_directory(pbx.name)
        assert system.consistent()
        report = system.auditor.run_cycle(full=True)
        assert report.ok
        assert not system.alerts.is_active("audit-mismatch")
        cleared = system.obs.journal.last("alert.cleared")
        assert cleared.attributes["rule"] == "audit-mismatch"

    def test_background_thread_runs_cycles(self, system):
        import time

        self.add_person(system)
        system.auditor.start(interval=0.01)
        assert system.auditor.running
        deadline = time.time() + 5.0
        registry = system.obs.registry
        while time.time() < deadline:
            if registry.value("metacomm_audit_cycles_total") >= 3:
                break
            time.sleep(0.01)
        system.auditor.stop()
        assert not system.auditor.running
        assert registry.value("metacomm_audit_cycles_total") >= 3
        # The live probes never flagged the consistent system.
        assert registry.value("metacomm_audit_last_mismatches") == 0

    def test_updates_flow_while_auditor_runs(self, system):
        """No quiescing: updates land while the sampler probes."""
        system.auditor.start(interval=0.005)
        for i in range(5):
            self.add_person(system, cn=f"Person {i}", extension=str(4200 + i))
        system.auditor.stop()
        assert system.consistent()

    def test_monitor_snapshot_shape(self, system):
        self.add_person(system)
        system.auditor.run_cycle(full=True)
        snap = system.monitor_snapshot()
        assert snap["queue"]["depth"] == 0
        assert snap["queue"]["last_serial"] >= 1
        assert system.pbx().name in snap["devices"]
        assert snap["audit"]["ok"] is True
        assert snap["alerts"] == []
        assert snap["journal_events"] > 0
