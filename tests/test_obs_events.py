"""The event journal: bounded ring, typed kinds, listeners, JSONL export,
and the journal's integration with the live update pipeline."""

import json
import threading

import pytest

from repro.obs import EventJournal, MetricsRegistry, Tracer
from repro.obs.events import (
    EVENT_KINDS,
    DEVICE_COMMIT,
    UPDATE_ACCEPTED,
    UPDATE_PLANNED,
)


class TestEvent:
    def test_emit_returns_event_with_sequence_and_time(self):
        journal = EventJournal()
        event = journal.emit(UPDATE_ACCEPTED, serial=1, key="cn=X")
        assert event.seq == 1
        assert event.ts > 0
        assert event.kind == UPDATE_ACCEPTED
        assert event.attributes == {"serial": 1, "key": "cn=X"}

    def test_trace_correlation_from_object_and_string(self):
        journal = EventJournal()
        trace = Tracer().start("update")
        from_object = journal.emit(UPDATE_ACCEPTED, trace=trace)
        from_string = journal.emit(UPDATE_ACCEPTED, trace="trace-77")
        bare = journal.emit(UPDATE_ACCEPTED)
        assert from_object.trace_id == trace.trace_id
        assert from_string.trace_id == "trace-77"
        assert bare.trace_id is None

    def test_to_json_round_trips(self):
        journal = EventJournal()
        event = journal.emit(DEVICE_COMMIT, device="pbx", serial=3)
        parsed = json.loads(event.to_json())
        assert parsed["kind"] == DEVICE_COMMIT
        assert parsed["attributes"] == {"device": "pbx", "serial": 3}

    def test_kind_constants_are_unique_dotted_names(self):
        assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)
        assert all("." in kind for kind in EVENT_KINDS)


class TestEventJournal:
    def test_bounded_ring_drops_oldest(self):
        journal = EventJournal(capacity=3)
        for i in range(5):
            journal.emit(UPDATE_ACCEPTED, serial=i)
        assert len(journal) == 3
        serials = [e.attributes["serial"] for e in journal]
        assert serials == [2, 3, 4]
        # Sequence numbers keep counting across drops.
        assert [e.seq for e in journal] == [3, 4, 5]

    def test_drop_counter(self):
        registry = MetricsRegistry()
        journal = EventJournal(capacity=2, registry=registry)
        for i in range(5):
            journal.emit(UPDATE_ACCEPTED, serial=i)
        assert registry.value("metacomm_journal_dropped_total") == 3
        assert (
            registry.get("metacomm_journal_events_total").value_for(
                kind=UPDATE_ACCEPTED
            )
            == 5
        )

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventJournal(capacity=0)

    def test_filter_by_kind_and_since(self):
        journal = EventJournal()
        journal.emit(UPDATE_ACCEPTED, serial=1)
        journal.emit(UPDATE_PLANNED, serial=1)
        journal.emit(UPDATE_ACCEPTED, serial=2)
        accepted = journal.events(kind=UPDATE_ACCEPTED)
        assert [e.attributes["serial"] for e in accepted] == [1, 2]
        later = journal.events(since=accepted[0].seq)
        assert [e.seq for e in later] == [2, 3]
        assert journal.last(UPDATE_PLANNED).attributes["serial"] == 1
        assert journal.last("no.such.kind") is None

    def test_tail(self):
        journal = EventJournal()
        for i in range(5):
            journal.emit(UPDATE_ACCEPTED, serial=i)
        assert [e.attributes["serial"] for e in journal.tail(2)] == [3, 4]
        assert journal.tail(0) == []

    def test_disabled_is_a_noop(self):
        journal = EventJournal(enabled=False)
        assert journal.emit(UPDATE_ACCEPTED) is None
        assert len(journal) == 0

    def test_clear(self):
        journal = EventJournal()
        journal.emit(UPDATE_ACCEPTED)
        journal.clear()
        assert len(journal) == 0

    def test_listeners_receive_events(self):
        journal = EventJournal()
        seen = []
        journal.subscribe(seen.append)
        journal.emit(UPDATE_ACCEPTED, serial=1)
        journal.emit(UPDATE_PLANNED, serial=1)
        assert [e.kind for e in seen] == [UPDATE_ACCEPTED, UPDATE_PLANNED]
        journal.unsubscribe(seen.append)
        journal.emit(UPDATE_ACCEPTED, serial=2)
        assert len(seen) == 2

    def test_broken_listener_does_not_break_emit(self):
        journal = EventJournal()

        def broken(event):
            raise RuntimeError("boom")

        journal.subscribe(broken)
        event = journal.emit(UPDATE_ACCEPTED)
        assert event is not None
        assert len(journal) == 1

    def test_listener_may_subscribe_during_emit(self):
        # Listeners run after ``_lock`` is released (LX502/LX504): a
        # listener that calls back into subscribe() must not deadlock on
        # the journal's own non-reentrant lock.
        journal = EventJournal()
        seen = []

        def recursive(event):
            journal.subscribe(seen.append)

        journal.subscribe(recursive)
        journal.emit(UPDATE_ACCEPTED, serial=1)
        # The new subscriber was registered mid-emit; the *next* emit
        # reaches it (emit snapshots the listener set under the lock).
        journal.emit(UPDATE_PLANNED, serial=1)
        assert [e.kind for e in seen] == [UPDATE_PLANNED]

    def test_concurrent_emits_keep_unique_sequences(self):
        journal = EventJournal(capacity=4096)

        def emitter():
            for _ in range(200):
                journal.emit(UPDATE_ACCEPTED)

        threads = [threading.Thread(target=emitter) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [e.seq for e in journal]
        assert len(seqs) == 800
        assert len(set(seqs)) == 800

    def test_jsonl_export(self, tmp_path):
        journal = EventJournal()
        journal.emit(UPDATE_ACCEPTED, serial=1)
        journal.emit(DEVICE_COMMIT, device="pbx", serial=1)
        text = journal.to_jsonl()
        lines = text.strip().split("\n")
        assert len(lines) == 2
        assert json.loads(lines[1])["kind"] == DEVICE_COMMIT

        path = tmp_path / "events.jsonl"
        assert journal.export_jsonl(path) == 2
        exported = path.read_text().strip().split("\n")
        assert [json.loads(line)["seq"] for line in exported] == [1, 2]

    def test_empty_jsonl_is_empty_string(self):
        assert EventJournal().to_jsonl() == ""


class TestJournalPipelineIntegration:
    """The journal records an update's whole journey through the system."""

    @pytest.fixture
    def system(self):
        from repro.core import MetaComm, MetaCommConfig

        with MetaComm(MetaCommConfig()) as system:
            yield system

    def add_person(self, system, cn="Ann Field", extension="4101"):
        from repro.schemas import PERSON_CLASSES

        system.connection().add(
            f"cn={cn},o=Lucent",
            {
                "objectClass": list(PERSON_CLASSES),
                "cn": cn,
                "sn": cn.split()[-1],
                "definityExtension": extension,
            },
        )

    def test_ldap_add_leaves_a_complete_event_trail(self, system):
        self.add_person(system)
        kinds = [e.kind for e in system.obs.journal]
        assert kinds[:3] == [
            "update.accepted",
            "update.claimed",
            "update.planned",
        ]
        assert "device.attempt" in kinds
        assert "device.commit" in kinds
        assert "supplemental.write" in kinds
        # attempt precedes its commit
        assert kinds.index("device.attempt") < kinds.index("device.commit")

    def test_events_carry_the_update_trace_id(self, system):
        self.add_person(system)
        trace = system.last_trace("update")
        accepted = system.obs.journal.last("update.accepted")
        commit = system.obs.journal.last("device.commit")
        assert accepted.trace_id == trace.trace_id
        assert commit.trace_id == trace.trace_id

    def test_ddu_emits_ddu_received(self, system):
        self.add_person(system)
        system.terminal().execute("change station 4101 room 1A-100")
        event = system.obs.journal.last("ddu.received")
        assert event is not None
        assert event.attributes["device"] == system.pbx().name

    def test_device_rejection_emits_failure_and_abort(self, system):
        from repro.devices.base import DeviceError

        self.add_person(system)
        pbx = system.pbx()

        # A DeviceError during apply becomes a FilterError: the sequence
        # aborts per section 4.4 and the journal records both the
        # per-device failure and the abort decision.
        def fail(op, key):
            raise DeviceError("translation table full")

        pbx.fault_injector = fail
        self.add_person(system, cn="Bob Crash", extension="4102")
        pbx.fault_injector = None
        failure = system.obs.journal.last("device.failure")
        assert failure is not None
        assert failure.attributes["device"] == pbx.name
        aborted = system.obs.journal.last("sequence.aborted")
        assert aborted is not None
        assert aborted.attributes["device"] == pbx.name

    def test_unexpected_error_still_emits_device_failure(self, system):
        self.add_person(system)
        pbx = system.pbx()

        def fail(op, key):
            raise RuntimeError("craft interface wedged")

        pbx.fault_injector = fail
        with pytest.raises(RuntimeError):
            self.add_person(system, cn="Cara Crash", extension="4103")
        pbx.fault_injector = None
        failure = system.obs.journal.last("device.failure")
        assert failure is not None
        assert "wedged" in failure.attributes["error"]

    def test_observability_disabled_emits_nothing(self):
        from repro.core import MetaComm, MetaCommConfig

        with MetaComm(MetaCommConfig(observability=False)) as system:
            self.add_person(system)
            assert len(system.obs.journal) == 0
