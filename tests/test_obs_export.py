"""Exporter edge cases: label-value escaping, empty registries, and
histogram bucket ordering in the Prometheus text format."""

import json

from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import render_json, render_prometheus


class TestLabelEscaping:
    def sample_line(self, registry):
        body = [
            line
            for line in render_prometheus(registry).splitlines()
            if not line.startswith("#")
        ]
        assert len(body) == 1
        return body[0]

    def test_quotes_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "help", labelnames=("msg",))
        counter.labels(msg='say "hello"').inc()
        assert self.sample_line(registry) == 'c{msg="say \\"hello\\""} 1'

    def test_backslash_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "help", labelnames=("path",))
        counter.labels(path="C:\\temp").inc()
        assert self.sample_line(registry) == 'c{path="C:\\\\temp"} 1'

    def test_newline_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "help", labelnames=("msg",))
        counter.labels(msg="line1\nline2").inc()
        line = self.sample_line(registry)
        assert line == 'c{msg="line1\\nline2"} 1'
        # The rendered output must stay one sample per line.
        assert "\n" not in line

    def test_help_text_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", "first\nsecond \\ slash").inc()
        (help_line,) = [
            line
            for line in render_prometheus(registry).splitlines()
            if line.startswith("# HELP")
        ]
        assert help_line == "# HELP c first\\nsecond \\\\ slash"


class TestEmptyRegistry:
    def test_empty_registry_renders_empty_string(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_no_registries_renders_empty_string(self):
        assert render_prometheus() == ""

    def test_registered_but_untouched_metric_still_renders_header(self):
        registry = MetricsRegistry()
        registry.counter("c", "help", labelnames=("x",))
        text = render_prometheus(registry)
        assert "# TYPE c counter" in text
        # No children yet: headers only, no samples.
        assert not [
            line for line in text.splitlines() if not line.startswith("#")
        ]

    def test_empty_json_snapshot(self):
        payload = json.loads(render_json(MetricsRegistry(), Tracer()))
        assert payload == {"metrics": {}, "traces": []}


class TestHistogramRendering:
    def test_buckets_cumulative_and_ordered(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h", "help", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        text = render_prometheus(registry)
        buckets = [
            line
            for line in text.splitlines()
            if line.startswith("h_bucket")
        ]
        bounds = [
            line.split('le="')[1].split('"')[0] for line in buckets
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        # Ascending bounds ending at +Inf, cumulative counts.
        assert bounds == ["0.1", "1", "10", "+Inf"]
        assert counts == [1, 3, 4, 5]
        assert counts == sorted(counts)
        assert f"h_count 5" in text
        assert "h_sum " in text

    def test_inf_bucket_always_present(self):
        registry = MetricsRegistry()
        registry.histogram("h", "help", buckets=(1.0,)).observe(99.0)
        text = render_prometheus(registry)
        assert 'h_bucket{le="+Inf"} 1' in text
        assert 'h_bucket{le="1"} 0' in text

    def test_labelled_histogram_keeps_le_last(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h", "help", labelnames=("stage",), buckets=(1.0,)
        )
        histogram.labels(stage="fanout").observe(0.5)
        text = render_prometheus(registry)
        assert 'h_bucket{stage="fanout",le="1"} 1' in text


class TestMultiRegistry:
    def test_first_registry_wins_on_name_collision(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("c", "from first").inc()
        second.counter("c", "from second").inc(5)
        text = render_prometheus(first, second)
        assert "from first" in text
        assert "from second" not in text
        assert text.count("# TYPE c counter") == 1
