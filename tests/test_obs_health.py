"""Device-link health telemetry: the latency reservoir, per-device
rolling state, and the HealthBoard's gauges and transition events."""

import pytest

from repro.obs import (
    DEGRADED,
    HEALTHY,
    UNREACHABLE,
    DeviceHealth,
    EventJournal,
    HealthBoard,
    HealthPolicy,
    LatencyReservoir,
    MetricsRegistry,
)
from repro.obs.health import STATE_CODES


class TestLatencyReservoir:
    def test_empty_reservoir_reports_zero(self):
        reservoir = LatencyReservoir()
        assert reservoir.percentile(50) == 0.0
        assert reservoir.quantiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert len(reservoir) == 0

    def test_single_sample_is_every_percentile(self):
        reservoir = LatencyReservoir()
        reservoir.observe(0.25)
        assert reservoir.percentile(0) == 0.25
        assert reservoir.percentile(50) == 0.25
        assert reservoir.percentile(100) == 0.25

    def test_percentiles_interpolate(self):
        reservoir = LatencyReservoir()
        for value in (1.0, 2.0, 3.0, 4.0):
            reservoir.observe(value)
        assert reservoir.percentile(50) == 2.5
        assert reservoir.percentile(0) == 1.0
        assert reservoir.percentile(100) == 4.0

    def test_window_evicts_oldest(self):
        reservoir = LatencyReservoir(size=3)
        for value in (10.0, 1.0, 2.0, 3.0):
            reservoir.observe(value)
        # The 10.0 outlier has rolled out of the window.
        assert reservoir.percentile(100) == 3.0
        assert len(reservoir) == 3

    def test_quantiles_ordered(self):
        reservoir = LatencyReservoir()
        for i in range(100):
            reservoir.observe(i / 100.0)
        q = reservoir.quantiles()
        assert q["p50"] <= q["p95"] <= q["p99"]
        assert q["p50"] == pytest.approx(0.495)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyReservoir(size=0)


class TestDeviceHealth:
    def policy(self, **overrides):
        defaults = dict(window=4, degraded_error_rate=0.25,
                        unreachable_streak=3)
        defaults.update(overrides)
        return HealthPolicy(**defaults)

    def test_starts_healthy(self):
        health = DeviceHealth("pbx")
        assert health.state == HEALTHY
        assert health.error_rate == 0.0

    def test_error_rate_over_rolling_window(self):
        health = DeviceHealth("pbx", self.policy())
        for ok in (True, False, True, True):
            health.record_outcome(0.01, ok)
        assert health.error_rate == 0.25
        # The window rolls: four more successes push the failure out.
        for _ in range(4):
            health.record_outcome(0.01, True)
        assert health.error_rate == 0.0

    def test_degraded_above_error_rate_threshold(self):
        health = DeviceHealth("pbx", self.policy())
        health.record_outcome(0.01, True)
        health.record_outcome(0.01, False)
        health.record_outcome(0.01, True)
        health.record_outcome(0.01, False)
        assert health.error_rate == 0.5
        assert health.state == DEGRADED

    def test_unreachable_after_streak(self):
        health = DeviceHealth("pbx", self.policy())
        for _ in range(3):
            health.record_outcome(0.01, False)
        assert health.streak == 3
        assert health.state == UNREACHABLE
        # One success resets the streak (but the window still shows errors).
        health.record_outcome(0.01, True)
        assert health.streak == 0
        assert health.state == DEGRADED

    def test_latency_policy_degrades(self):
        health = DeviceHealth("pbx", self.policy(degraded_p95=0.1))
        for _ in range(10):
            health.record_link(0.5, True)
        assert health.state == DEGRADED

    def test_link_feed_does_not_touch_streak(self):
        health = DeviceHealth("pbx", self.policy())
        for _ in range(10):
            health.record_link(0.01, False)
        assert health.streak == 0
        assert health.state == HEALTHY
        assert health.link_errors == 10

    def test_note_applied_is_monotonic(self):
        health = DeviceHealth("pbx")
        health.note_applied(5)
        health.note_applied(3)
        assert health.last_applied_serial == 5

    def test_snapshot_shape(self):
        health = DeviceHealth("pbx")
        health.record_outcome(0.01, True)
        health.record_link(0.02, True)
        snap = health.snapshot()
        assert snap["device"] == "pbx"
        assert snap["state"] == HEALTHY
        assert snap["successes"] == 1
        assert snap["link_ops"] == 1
        assert set(snap["latency"]) == {"p50", "p95", "p99"}


class TestHealthBoard:
    def board(self):
        registry = MetricsRegistry()
        journal = EventJournal()
        policy = HealthPolicy(window=4, unreachable_streak=2)
        return HealthBoard(registry, journal=journal, policy=policy), \
            registry, journal

    def test_devices_created_on_demand(self):
        board, _, _ = self.board()
        assert board.devices() == []
        board.record_outcome("pbx", 0.01, True)
        assert [h.name for h in board.devices()] == ["pbx"]
        assert board.states() == {"pbx": HEALTHY}

    def test_outcome_metrics(self):
        board, registry, _ = self.board()
        board.record_outcome("pbx", 0.01, True)
        board.record_outcome("pbx", 0.01, False)
        attempts = registry.get("metacomm_device_attempts_total")
        assert attempts.value_for(device="pbx", outcome="ok") == 1
        assert attempts.value_for(device="pbx", outcome="error") == 1
        assert registry.value(
            "metacomm_device_consecutive_failures", device="pbx"
        ) == 1

    def test_transition_emits_journal_event_once(self):
        board, registry, journal = self.board()
        board.record_outcome("pbx", 0.01, False)
        board.record_outcome("pbx", 0.01, False)
        assert registry.value("metacomm_device_health", device="pbx") == \
            STATE_CODES[UNREACHABLE]
        transitions = journal.events(kind="health.transition")
        # healthy->degraded, degraded->unreachable: one event per flip,
        # not one per outcome.
        assert [(e.attributes["previous"], e.attributes["state"])
                for e in transitions] == [
            (HEALTHY, DEGRADED),
            (DEGRADED, UNREACHABLE),
        ]
        # Recovery is also journalled.
        for _ in range(4):
            board.record_outcome("pbx", 0.01, True)
        last = journal.last("health.transition")
        assert last.attributes["state"] == HEALTHY

    def test_link_observer_feeds_reservoir(self):
        board, _, _ = self.board()
        observer = board.link_observer("mp")
        observer("add", "cn=X", 0.02, True)
        observer("modify", "cn=X", 0.04, False)
        health = board.device("mp")
        assert len(health.reservoir) == 2
        assert health.link_errors == 1
        # Link errors never drive the derived state.
        assert health.state == HEALTHY

    def test_refresh_gauges_publishes_percentiles_and_lag(self):
        board, registry, _ = self.board()
        board.record_outcome("pbx", 0.01, True)
        board.note_applied("pbx", 7)
        observer = board.link_observer("pbx")
        for ms in (10, 20, 30):
            observer("add", "k", ms / 1000.0, True)
        board.refresh_gauges(last_serial=10)
        assert registry.value(
            "metacomm_device_link_latency_seconds",
            device="pbx", quantile="p50",
        ) == pytest.approx(0.02)
        assert registry.value(
            "metacomm_device_last_applied_lag", device="pbx"
        ) == 3
        assert registry.value(
            "metacomm_device_error_rate", device="pbx"
        ) == 0.0

    def test_disabled_board_is_inert(self):
        board = HealthBoard(MetricsRegistry(), enabled=False)
        board.record_outcome("pbx", 0.01, False)
        board.record_link("pbx", "add", 0.01, True)
        board.note_applied("pbx", 3)
        board.refresh_gauges(last_serial=5)
        assert board.devices() == []

    def test_board_without_registry(self):
        board = HealthBoard()
        board.record_outcome("pbx", 0.01, True)
        board.refresh_gauges(last_serial=1)
        assert board.states() == {"pbx": HEALTHY}


class TestPipelineHealthIntegration:
    """The fan-out feed and link feed wired through a live MetaComm."""

    def test_device_updates_feed_both_channels(self):
        from repro.core import MetaComm, MetaCommConfig
        from repro.schemas import PERSON_CLASSES

        with MetaComm(MetaCommConfig()) as system:
            system.connection().add(
                "cn=Ann Field,o=Lucent",
                {
                    "objectClass": list(PERSON_CLASSES),
                    "cn": "Ann Field",
                    "sn": "Field",
                    "definityExtension": "4100",
                },
            )
            health = system.obs.health.device(system.pbx().name)
            assert health.successes >= 1
            assert len(health.reservoir) >= 1
            assert health.last_applied_serial >= 1
            assert health.state == HEALTHY
