"""End-to-end observability tests: tracing + metrics across the pipeline.

The acceptance bar of this subsystem: one LDAP add through a wired
MetaComm produces a queryable trace covering trigger, queue, per-device
apply and supplemental write — each leg with a nonzero wall-clock
duration — and one scrape covers every component's counters.
"""

import pytest

from repro.core import MetaComm, MetaCommConfig
from repro.ldap.dn import DN
from repro.ldap.entry import Entry
from repro.ldap.protocol import AddRequest, Session
from repro.ltap.triggers import ChangeType, TriggerEvent
from repro.schemas import PERSON_CLASSES


def person_attrs(cn, sn, **extra):
    attrs = {"objectClass": list(PERSON_CLASSES), "cn": cn, "sn": sn}
    attrs.update(extra)
    return attrs


@pytest.fixture
def system():
    return MetaComm(MetaCommConfig(organizations=("Marketing",)))


def add_john(system):
    system.connection().add(
        "cn=John Doe,o=Marketing,o=Lucent",
        person_attrs("John Doe", "Doe", definityExtension="4100"),
    )


class TestUpdateTrace:
    def test_single_add_produces_full_trace(self, system):
        """The ISSUE's acceptance criterion, verbatim."""
        add_john(system)
        trace = system.last_trace("update")
        assert trace is not None and trace.finished
        names = set(trace.span_names())
        # >= 4 distinct stages: trigger, queue, per-device apply,
        # supplemental write.
        assert {
            "ltap.trigger",
            "queue.wait",
            "filter.apply",
            "ldap.supplemental",
        } <= names
        for span in trace.spans:
            assert span.duration > 0, f"{span.name} has no duration"

    def test_trace_covers_every_device(self, system):
        add_john(system)
        trace = system.last_trace("update")
        devices = {
            span.attributes["device"] for span in trace.find("filter.apply")
        }
        assert devices == {"definity", "messaging"}

    def test_trace_attributes_identify_the_update(self, system):
        add_john(system)
        trace = system.last_trace("update")
        assert trace.attributes["op"] == "add"
        assert "cn=John Doe" in trace.attributes["dn"]

    def test_one_trace_per_update_sequence(self, system):
        # The supplemental write re-enters the gateway mid-sequence; it
        # must join the open trace, not open a nested one.
        add_john(system)
        assert len(system.traces("update")) == 1

    def test_failed_apply_marks_span(self, system):
        add_john(system)
        # Station 4100 exists; a second person claiming it makes the PBX
        # filter raise, which the span records as an error attribute.
        system.connection().add(
            "cn=Dupe,o=Marketing,o=Lucent",
            person_attrs("Dupe", "Dupe", definityExtension="4100"),
        )
        trace = system.last_trace("update")
        (span,) = [
            s for s in trace.find("filter.apply") if "error" in s.attributes
        ]
        assert span.attributes["device"] == "definity"

    def test_ddu_trace(self, system):
        add_john(system)
        system.terminal().execute("change station 4100 room 2B-110")
        trace = system.last_trace("ddu")
        assert trace is not None and trace.finished
        names = set(trace.span_names())
        assert {"ddu.translate", "ddu.forward", "filter.apply"} <= names
        assert trace.attributes["device"] == "definity"

    def test_ring_buffer_respects_configured_capacity(self):
        system = MetaComm(
            MetaCommConfig(organizations=("Marketing",), trace_capacity=2)
        )
        for i in range(4):
            system.connection().add(
                f"cn=U{i},o=Marketing,o=Lucent",
                person_attrs(f"U{i}", "U", definityExtension=str(4100 + i)),
            )
        assert len(system.traces("update")) == 2

    def test_threaded_mode_traces_cross_the_thread_hop(self, system):
        system.um.start()
        try:
            add_john(system)
        finally:
            system.um.stop()
        trace = system.last_trace("update")
        assert {"queue.wait", "filter.apply"} <= set(trace.span_names())


class TestMetrics:
    def test_scrape_covers_the_pipeline(self, system):
        add_john(system)
        text = system.metrics_text()
        assert "metacomm_queue_depth 0" in text
        assert 'metacomm_um_fanout_total{device="definity"} 1' in text
        assert 'metacomm_um_fanout_total{device="messaging"} 1' in text
        assert 'metacomm_ltap_requests_total{kind="update"}' in text
        assert 'metacomm_ldap_ops_total{op="add"}' in text
        assert "metacomm_queue_wait_seconds_count 1" in text
        assert "metacomm_um_sequence_seconds_count 1" in text
        # Module-level lexpress counter rides along via the global registry.
        assert "lexpress_instructions_total" in text

    def test_json_export(self, system):
        import json

        add_john(system)
        document = json.loads(system.metrics_json())
        assert document["metrics"]["metacomm_um_ldap_events_total"][
            "samples"
        ] == [{"labels": {}, "value": 1}]
        assert any(t["name"] == "update" for t in document["traces"])

    def test_statistics_views_stay_backward_compatible(self, system):
        add_john(system)
        assert system.um.queue.statistics == {"enqueued": 1, "processed": 1}
        assert system.um.statistics["ldap_events"] == 1
        assert system.um.statistics["fanned_out"] == 2
        assert system.um.statistics["supplemental_writes"] == 1
        assert system.gateway.statistics["updates_processed"] >= 1
        assert system.server.statistics["writes"] >= 1
        pbx_filter = system.um.bindings[0].filter
        assert pbx_filter.statistics["applied"] == 1

    def test_two_systems_do_not_share_counters(self):
        first = MetaComm(MetaCommConfig(organizations=("Marketing",)))
        second = MetaComm(MetaCommConfig(organizations=("Marketing",)))
        add_john(first)
        assert first.um.statistics["ldap_events"] == 1
        assert second.um.statistics["ldap_events"] == 0

    def test_connection_events_are_counted(self, system):
        # Satellite: _handle_connection_event used to drop events on the
        # floor; now every delivery is counted by connection kind.
        entry = Entry(
            DN.parse("cn=X,o=Marketing,o=Lucent"),
            person_attrs("X", "X"),
        )
        event = TriggerEvent(
            change_type=ChangeType.ADD,
            dn=entry.dn,
            request=AddRequest(entry),
            before=None,
            after=entry,
            session=Session(),
        )
        with system.um.connections.open(persistent=True) as conn:
            conn.send(event)
            conn.send(event)
        with system.um.connections.open(persistent=False) as conn:
            conn.send(event)
        registry = system.obs.registry
        assert (
            registry.value("metacomm_um_connection_events_total", kind="persistent")
            == 2
        )
        assert (
            registry.value("metacomm_um_connection_events_total", kind="single_shot")
            == 1
        )


class TestDisabledObservability:
    def test_disabled_system_still_works(self):
        system = MetaComm(
            MetaCommConfig(organizations=("Marketing",), observability=False)
        )
        add_john(system)
        assert system.pbx().contains("4100")
        assert system.consistent()
        assert system.traces() == []
        assert system.last_trace("update") is None
        # Counters exist but stayed at zero — and the legacy views agree.
        assert system.um.queue.statistics == {"enqueued": 0, "processed": 0}

    def test_disabled_scrape_renders_zeros(self):
        system = MetaComm(
            MetaCommConfig(organizations=("Marketing",), observability=False)
        )
        add_john(system)
        assert "metacomm_um_ldap_events_total 0" in system.metrics_text()


class TestCompensationRegression:
    """Satellite: the supplemental-write result used to be assigned to
    ``applied``, shadowing the saga compensation list in ``_run_sequence``."""

    def test_compensate_receives_tuples_after_supplemental_write(self):
        system = MetaComm(
            MetaCommConfig(
                organizations=("Marketing",),
                abort_on_failure=False,
                undo_on_failure=True,
            )
        )
        seen = []
        original = system.um._compensate

        def spying(applied, trace=None):
            seen.append(list(applied))
            return original(applied, trace)

        system.um._compensate = spying
        add_john(system)  # performs a supplemental write (echo of the add)
        assert system.um.statistics["supplemental_writes"] == 1
        # Now make the messaging platform (applied second) reject the next
        # add after the PBX (applied first) accepted it: compensation must
        # receive the (binding, update, before) list and roll the PBX back.
        from repro.core.filters.base import FilterError

        def failing_apply(update):
            raise FilterError("messaging", "messaging store offline")

        system.um.bindings[1].filter.apply = failing_apply
        system.connection().add(
            "cn=Pat Smith,o=Marketing,o=Lucent",
            person_attrs("Pat Smith", "Smith", definityExtension="4101"),
        )
        assert seen, "_compensate was never invoked"
        for call in seen:
            for item in call:
                binding, update, before = item  # tuple shape intact
                assert hasattr(binding, "filter")
        assert system.um.statistics["compensated"] >= 1
        # The PBX add was undone.
        assert not system.pbx().contains("4101")
