"""Unit tests for the metrics registry (repro.obs.metrics) and exporters."""

import json

import pytest

from repro.obs.export import render_json, render_prometheus
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    global_registry,
)
from repro.obs.views import StatsView


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total", "c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "ops", labelnames=("op",))
        counter.labels(op="add").inc()
        counter.labels(op="add").inc()
        counter.labels(op="delete").inc()
        assert counter.value_for(op="add") == 2
        assert counter.value_for(op="delete") == 1
        assert counter.value_for(op="modify") == 0  # never touched
        assert counter.total() == 3

    def test_label_names_enforced(self):
        counter = MetricsRegistry().counter("ops_total", "ops", labelnames=("op",))
        with pytest.raises(ValueError):
            counter.labels(kind="add")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth", "queue depth")
        gauge.set(10)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 8


class TestHistogram:
    def test_observe_buckets(self):
        histogram = MetricsRegistry().histogram(
            "latency_seconds", "latency", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        cumulative = histogram.cumulative()
        assert cumulative == [(0.1, 1), (1.0, 2), (float("inf"), 3)]
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5.55)

    def test_timer_context_manager(self):
        histogram = MetricsRegistry().histogram("t_seconds", "t")
        with histogram.time():
            pass
        assert histogram.count == 1
        assert histogram.sum > 0

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "x")
        second = registry.counter("x_total", "different help, same metric")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "x", labelnames=("b",))

    def test_iteration_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "b")
        registry.counter("a_total", "a")
        assert [m.name for m in registry] == ["a_total", "b_total"]

    def test_value_lookup(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", "ops", labelnames=("op",)).labels(
            op="add"
        ).inc()
        assert registry.value("ops_total", op="add") == 1
        assert registry.value("missing") == 0.0

    def test_disabled_registry_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x_total", "x", labelnames=("op",))
        counter.labels(op="add").inc(5)
        gauge = registry.gauge("g", "g")
        gauge.set(3)
        histogram = registry.histogram("h_seconds", "h")
        histogram.observe(0.5)
        with histogram.time():
            pass
        assert counter.total() == 0
        assert gauge.value == 0
        assert histogram.count == 0

    def test_global_registry_is_singleton(self):
        assert global_registry() is global_registry()

    def test_snapshot_is_jsonable(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x").inc()
        registry.histogram("h_seconds", "h", buckets=(1.0,)).observe(0.5)
        json.dumps(registry.snapshot())


class TestPrometheusRendering:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "Requests served").inc(3)
        registry.gauge("depth", "Queue depth").set(2)
        text = render_prometheus(registry)
        assert "# HELP reqs_total Requests served" in text
        assert "# TYPE reqs_total counter" in text
        assert "reqs_total 3" in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text

    def test_labels_and_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("q_total", "multi\nline", labelnames=("k",))
        counter.labels(k='a"b').inc()
        text = render_prometheus(registry)
        assert "# HELP q_total multi\\nline" in text
        assert 'q_total{k="a\\"b"} 1' in text

    def test_histogram_expansion(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", "h", buckets=(0.1,)).observe(0.05)
        text = render_prometheus(registry)
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text

    def test_multiple_registries_first_wins(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("x_total", "x").inc(1)
        second.counter("x_total", "x").inc(99)
        second.counter("y_total", "y").inc(2)
        text = render_prometheus(first, second)
        assert "x_total 1" in text
        assert "x_total 99" not in text
        assert "y_total 2" in text

    def test_json_rendering(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x").inc(7)
        document = json.loads(render_json(registry))
        metric = document["metrics"]["x_total"]
        assert metric["kind"] == "counter"
        assert metric["samples"] == [{"labels": {}, "value": 7}]


class TestStatsView:
    def test_reads_live_values(self):
        counter = MetricsRegistry().counter("x_total", "x")
        view = StatsView({"count": lambda: counter.value})
        assert view == {"count": 0}
        counter.inc(2)
        assert view == {"count": 2}
        assert view["count"] == 2
        assert isinstance(view["count"], int)

    def test_mapping_protocol(self):
        view = StatsView({"a": lambda: 1, "b": lambda: 2})
        assert list(view) == ["a", "b"]
        assert len(view) == 2
        assert dict(view) == {"a": 1, "b": 2}
        assert view != {"a": 1}
        assert repr(view) == repr({"a": 1, "b": 2})
