"""Unit tests for the trace store (repro.obs.trace)."""

import pytest

from repro.obs.trace import OBS_TRACE, Span, Tracer, trace_span


class TestSpan:
    def test_to_dict(self):
        span = Span("queue.wait", 100.0, duration=0.25, attributes={"serial": 3})
        assert span.to_dict() == {
            "name": "queue.wait",
            "started_at": 100.0,
            "duration": 0.25,
            "attributes": {"serial": 3},
        }


class TestTrace:
    def test_span_context_manager_times_block(self):
        tracer = Tracer()
        trace = tracer.start("update", op="add")
        with trace.span("stage.one", device="pbx") as span:
            pass
        assert span.duration > 0
        assert span.attributes == {"device": "pbx"}
        assert trace.span_names() == ["stage.one"]

    def test_span_records_error_attribute(self):
        trace = Tracer().start("update")
        with pytest.raises(RuntimeError):
            with trace.span("stage.bad"):
                raise RuntimeError("device refused")
        (span,) = trace.find("stage.bad")
        assert span.attributes["error"] == "device refused"
        assert span.duration > 0  # timed even on failure

    def test_record_externally_measured_leg(self):
        trace = Tracer().start("update")
        span = trace.record("queue.wait", 0.125, serial=7)
        assert span.duration == 0.125
        assert span.attributes == {"serial": 7}

    def test_finish_is_idempotent(self):
        trace = Tracer().start("update")
        assert not trace.finished
        trace.finish()
        first = trace.duration
        trace.finish()
        assert trace.duration == first
        assert trace.finished

    def test_find_and_span_names(self):
        trace = Tracer().start("update")
        trace.record("filter.apply", 0.1, device="a")
        trace.record("filter.apply", 0.2, device="b")
        trace.record("ldap.supplemental", 0.3)
        assert trace.span_names() == [
            "filter.apply",
            "filter.apply",
            "ldap.supplemental",
        ]
        assert [s.attributes["device"] for s in trace.find("filter.apply")] == [
            "a",
            "b",
        ]

    def test_to_dict(self):
        trace = Tracer().start("ddu", device="definity")
        trace.record("ddu.translate", 0.01)
        trace.finish()
        document = trace.to_dict()
        assert document["name"] == "ddu"
        assert document["attributes"] == {"device": "definity"}
        assert document["duration"] is not None
        assert [s["name"] for s in document["spans"]] == ["ddu.translate"]


class TestTracer:
    def test_ring_buffer_capacity(self):
        tracer = Tracer(capacity=3)
        opened = [tracer.start("update", n=i) for i in range(5)]
        assert len(tracer) == 3
        kept = tracer.traces()
        assert kept == opened[2:]  # oldest two evicted

    def test_traces_filter_by_name_and_last(self):
        tracer = Tracer()
        update = tracer.start("update")
        ddu = tracer.start("ddu")
        update2 = tracer.start("update")
        assert tracer.traces("update") == [update, update2]
        assert tracer.last("update") is update2
        assert tracer.last("ddu") is ddu
        assert tracer.last() is update2
        assert tracer.last("missing") is None

    def test_disabled_tracer_returns_none(self):
        tracer = Tracer(enabled=False)
        assert tracer.start("update") is None
        assert len(tracer) == 0

    def test_clear(self):
        tracer = Tracer()
        tracer.start("update")
        tracer.clear()
        assert tracer.traces() == []

    def test_unique_ids(self):
        tracer = Tracer()
        a, b = tracer.start("update"), tracer.start("update")
        assert a.trace_id != b.trace_id


class TestTraceSpanHelper:
    def test_null_trace_is_noop(self):
        with trace_span(None, "stage.one") as span:
            assert span is None

    def test_active_trace_delegates(self):
        trace = Tracer().start("update")
        with trace_span(trace, "stage.one", k="v") as span:
            assert span is not None
        assert trace.span_names() == ["stage.one"]
        assert trace.spans[0].attributes == {"k": "v"}

    def test_session_state_key(self):
        # The contract between LTAP and the UM: one well-known key.
        assert OBS_TRACE == "obs.trace"
