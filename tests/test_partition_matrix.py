"""Edge cases of the section-4.2 partition routing matrix.

``route(old_sat, new_sat)`` decides the target-side operation from
constraint satisfaction of the old and new images; these tests pin every
cell of the matrix plus the awkward inputs around it — attributes missing
from one side, multi-valued attributes feeding the constraint, and empty
(but present) images.
"""

import pytest

from repro.lexpress import (
    PartitionConstraint,
    TargetAction,
    UpdateDescriptor,
    UpdateOp,
    compile_mapping,
    route,
)

PARTITIONED = """
mapping ldap_to_pbx {
    source ldap;
    target pbx;
    key definityExtension -> Extension;

    map Extension = definityExtension;
    map Room = roomNumber;
    partition when prefix(Extension, "4");
}
"""


@pytest.fixture
def mapping():
    return compile_mapping(PARTITIONED)


class TestRouteMatrix:
    """The four cells of the decision matrix, straight from `route`."""

    def test_add_when_only_new_satisfies(self):
        assert route(False, True) is TargetAction.ADD

    def test_modify_when_both_satisfy(self):
        assert route(True, True) is TargetAction.MODIFY

    def test_delete_when_only_old_satisfies(self):
        assert route(True, False) is TargetAction.DELETE

    def test_skip_when_neither_satisfies(self):
        assert route(False, False) is TargetAction.SKIP


class TestTranslateMatrix:
    """The same four cells driven end-to-end through translate()."""

    def test_migrated_in_is_add(self, mapping):
        update = UpdateDescriptor(
            op=UpdateOp.MODIFY,
            source="ldap",
            key="k",
            old={"definityExtension": ["5100"], "roomNumber": ["1A"]},
            new={"definityExtension": ["4100"], "roomNumber": ["1A"]},
        )
        result = mapping.translate(update)
        assert result.action is TargetAction.ADD
        assert result.key == "4100"

    def test_stayed_inside_is_modify(self, mapping):
        update = UpdateDescriptor(
            op=UpdateOp.MODIFY,
            source="ldap",
            key="k",
            old={"definityExtension": ["4100"], "roomNumber": ["1A"]},
            new={"definityExtension": ["4100"], "roomNumber": ["2B"]},
        )
        result = mapping.translate(update)
        assert result.action is TargetAction.MODIFY
        assert result.changed == {"Room": ["2B"]}

    def test_migrated_out_is_delete(self, mapping):
        update = UpdateDescriptor(
            op=UpdateOp.MODIFY,
            source="ldap",
            key="k",
            old={"definityExtension": ["4100"], "roomNumber": ["1A"]},
            new={"definityExtension": ["5100"], "roomNumber": ["1A"]},
        )
        result = mapping.translate(update)
        assert result.action is TargetAction.DELETE
        # DELETE is keyed by the *old* image: the new one is not ours.
        assert result.key == "4100"

    def test_never_ours_is_skip(self, mapping):
        update = UpdateDescriptor(
            op=UpdateOp.MODIFY,
            source="ldap",
            key="k",
            old={"definityExtension": ["5100"], "roomNumber": ["1A"]},
            new={"definityExtension": ["5100"], "roomNumber": ["2B"]},
        )
        assert mapping.translate(update).action is TargetAction.SKIP


class TestMissingAttributes:
    """Constraint attribute absent from one or both sides."""

    def test_attribute_missing_from_old_image_is_add(self, mapping):
        update = UpdateDescriptor(
            op=UpdateOp.MODIFY,
            source="ldap",
            key="k",
            old={"roomNumber": ["1A"]},
            new={"definityExtension": ["4100"], "roomNumber": ["1A"]},
        )
        assert mapping.translate(update).action is TargetAction.ADD

    def test_attribute_missing_from_new_image_is_delete(self, mapping):
        update = UpdateDescriptor(
            op=UpdateOp.MODIFY,
            source="ldap",
            key="k",
            old={"definityExtension": ["4100"], "roomNumber": ["1A"]},
            new={"roomNumber": ["1A"]},
        )
        assert mapping.translate(update).action is TargetAction.DELETE

    def test_attribute_missing_from_both_is_skip(self, mapping):
        update = UpdateDescriptor(
            op=UpdateOp.MODIFY,
            source="ldap",
            key="k",
            old={"roomNumber": ["1A"]},
            new={"roomNumber": ["2B"]},
        )
        assert mapping.translate(update).action is TargetAction.SKIP


class TestMultiValuedAttributes:
    """Scalar constraint evaluation sees the first value of a
    multi-valued attribute (documented LOAD_ATTR semantics)."""

    def test_first_value_decides_satisfaction(self, mapping):
        update = UpdateDescriptor(
            op=UpdateOp.ADD,
            source="ldap",
            key="k",
            new={"definityExtension": ["4100", "5100"]},
        )
        assert mapping.translate(update).action is TargetAction.ADD

    def test_first_value_outside_partition_skips(self, mapping):
        update = UpdateDescriptor(
            op=UpdateOp.ADD,
            source="ldap",
            key="k",
            new={"definityExtension": ["5100", "4100"]},
        )
        assert mapping.translate(update).action is TargetAction.SKIP

    def test_constraint_api_accepts_multi_valued_images(self):
        constraint = PartitionConstraint.compile('prefix(Extension, "4")')
        assert constraint.satisfied_by({"Extension": ["4100", "5100"]})
        assert not constraint.satisfied_by({"Extension": ["5100", "4100"]})


class TestEmptyImages:
    """None means 'no record on that side'; {} means 'a record with no
    attributes'.  Both violate a prefix constraint, but for different
    reasons — and AlwaysTrue distinguishes them."""

    def test_add_with_out_of_partition_new_is_skip(self, mapping):
        update = UpdateDescriptor(
            op=UpdateOp.ADD, source="ldap", key="k", new={"definityExtension": ["5100"]}
        )
        assert mapping.translate(update).action is TargetAction.SKIP

    def test_delete_of_in_partition_old_is_delete(self, mapping):
        update = UpdateDescriptor(
            op=UpdateOp.DELETE, source="ldap", key="k", old={"definityExtension": ["4100"]}
        )
        assert mapping.translate(update).action is TargetAction.DELETE

    def test_empty_new_attrs_is_skip(self, mapping):
        update = UpdateDescriptor(op=UpdateOp.ADD, source="ldap", key="k", new={})
        assert mapping.translate(update).action is TargetAction.SKIP

    def test_none_image_never_satisfies_any_constraint(self):
        constraint = PartitionConstraint.compile('prefix(Extension, "4")')
        assert not constraint.satisfied_by(None)

    def test_empty_image_satisfies_always_true_but_none_does_not(self):
        from repro.lexpress import AlwaysTrue

        constraint = AlwaysTrue()
        assert constraint.satisfied_by({})
        assert not constraint.satisfied_by(None)
