"""Tests for the staged update-sequence pipeline (repro.core.pipeline).

Covers the pipeline's plan/outcome objects, the case-insensitive
fold-back merge, the atomic queue claim of the threaded hand-off, and —
the heart of the refactor — the guarantee that the failure policies
(abort, saga compensation) behave *identically* in serial and parallel
fan-out modes: same error-log records, same compensation order, same
final device states.
"""

import threading

import pytest

from repro.core import MetaComm, MetaCommConfig, PbxConfig, merge_attrs
from repro.core.queue import GlobalUpdateQueue
from repro.devices import InvalidFieldError
from repro.ldap import Modification
from repro.ldap.dn import DN
from repro.lexpress.descriptor import UpdateDescriptor, UpdateOp
from repro.schemas import PERSON_CLASSES


def person_attrs(cn, sn, **extra):
    attrs = {"objectClass": list(PERSON_CLASSES), "cn": cn, "sn": sn}
    attrs.update(extra)
    return attrs


def fleet(n_pbxes=3, **overrides):
    """A system whose PBXes all share the extension prefix, so one update
    fans out to every binding (n PBXes + the messaging platform)."""
    return MetaComm(
        MetaCommConfig(
            pbxes=[PbxConfig(f"pbx-{i + 1}", ("4",)) for i in range(n_pbxes)],
            **overrides,
        )
    )


def error_records(system):
    """(target, message, context) tuples of the error log, oldest first."""
    return [
        (
            entry.first("metacommErrorTarget"),
            entry.first("metacommError"),
            entry.first("description"),
        )
        for entry in system.error_log.entries()
    ]


def device_states(system):
    """Canonicalized dump of every device repository, keyed by binding."""
    return {
        binding.name: sorted(
            tuple(sorted((k, tuple(v)) for k, v in record.items()))
            for record in binding.filter.dump()
        )
        for binding in system.um.bindings
    }


def explode(op, key):
    raise InvalidFieldError("injected device fault")


class TestMergeAttrs:
    def test_existing_spelling_wins(self):
        dest = {"telephoneNumber": ["+1 908 582 4100"]}
        merge_attrs(dest, {"telephonenumber": ["+1 908 582 4200"]})
        assert dest == {"telephoneNumber": ["+1 908 582 4200"]}

    def test_new_attribute_keeps_first_spelling(self):
        dest = {}
        merge_attrs(dest, {"mpMailboxId": ["MB-1"]})
        merge_attrs(dest, {"MPMAILBOXID": ["MB-2"]})
        assert dest == {"mpMailboxId": ["MB-2"]}

    def test_values_are_copied(self):
        source = {"cn": ["A B"]}
        dest = merge_attrs({}, source)
        source["cn"].append("mutated")
        assert dest["cn"] == ["A B"]

    def test_returns_dest(self):
        dest = {}
        assert merge_attrs(dest, {"sn": ["B"]}) is dest

    def test_one_canonical_key_per_attribute(self):
        # Two case-variants in one source: last writer wins, one key out.
        dest = merge_attrs(
            {}, {"definityRoom": ["1A"], "definityroom": ["2B"]}
        )
        assert len(dest) == 1
        assert list(dest.values()) == [["2B"]]


class TestSupplementalCaseInsensitive:
    def test_apply_supplemental_folds_case_variants(self):
        system = MetaComm(MetaCommConfig())
        conn = system.connection()
        conn.add(
            "cn=A B,o=Lucent",
            person_attrs("A B", "B", definityExtension="4100"),
        )
        wrote = system.ldap_filter.apply_supplemental(
            DN.parse("cn=A B,o=Lucent"),
            {"definityRoom": ["1A"], "definityroom": ["2B"]},
            None,
        )
        assert wrote
        entry = conn.get("cn=A B,o=Lucent")
        assert entry.get("definityRoom") == ["2B"]

    def test_sequence_supplement_has_one_key_per_attribute(self):
        # The merge stage must never hand the LDAP filter a supplement
        # with two case-variant spellings of the same attribute.
        system = fleet(2)
        system.connection().add(
            "cn=A B,o=Lucent",
            person_attrs("A B", "B", definityExtension="4100"),
        )
        outcome = system.um.pipeline.last_outcome
        assert outcome is not None and outcome.supplemental_written
        names = [name.lower() for name in outcome.supplement]
        assert len(names) == len(set(names))


class TestQueueClaim:
    def test_claim_returns_the_callers_descriptor(self):
        queue = GlobalUpdateQueue()
        foreign = UpdateDescriptor(UpdateOp.ADD, "ldap", "cn=other", new={"cn": ["other"]})
        mine = UpdateDescriptor(UpdateOp.ADD, "ldap", "cn=mine", new={"cn": ["mine"]})
        queue.enqueue(foreign)
        item = queue.claim(mine)
        # The old enqueue-then-dequeue dance would have handed back the
        # foreign item here, pairing it with the wrong session.
        assert item.descriptor is mine
        assert len(queue) == 1
        assert queue.dequeue().descriptor is foreign

    def test_claim_assigns_the_global_serial(self):
        queue = GlobalUpdateQueue()
        first = queue.enqueue(UpdateDescriptor(UpdateOp.ADD, "ldap", "a", new={"cn": ["a"]}))
        claimed = queue.claim(UpdateDescriptor(UpdateOp.ADD, "ldap", "b", new={"cn": ["b"]}))
        assert claimed.serial == first.serial + 1

    def test_claim_counts_as_enqueued_and_processed(self):
        queue = GlobalUpdateQueue()
        queue.claim(UpdateDescriptor(UpdateOp.ADD, "ldap", "a", new={"cn": ["a"]}))
        assert queue.statistics == {"enqueued": 1, "processed": 1}

    def test_threaded_trigger_ignores_foreign_queue_items(self):
        system = MetaComm(MetaCommConfig())
        system.um.start()
        try:
            # A descriptor parked on the queue by someone else must not be
            # picked up by this trigger's hand-off.
            foreign = UpdateDescriptor(UpdateOp.ADD, "ldap", "cn=parked", new={"cn": ["parked"]})
            system.um.queue.enqueue(foreign)
            system.connection().add(
                "cn=A B,o=Lucent",
                person_attrs("A B", "B", definityExtension="4100"),
            )
            assert system.pbx().contains("4100")
            assert len(system.um.queue) == 1
            assert system.um.queue.dequeue().descriptor is foreign
        finally:
            system.um.stop()

    def test_threaded_concurrent_sessions_stay_paired(self):
        # Regression for the hand-off race: many clients racing through
        # the trigger; every session must process *its own* update (a
        # swapped item points the supplemental write at the wrong entry).
        system = MetaComm(MetaCommConfig())
        system.um.start()
        errors = []

        def client(i):
            try:
                system.connection().add(
                    f"cn=U{i},o=Lucent",
                    person_attrs(f"U{i}", "U", definityExtension=str(4100 + i)),
                )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        try:
            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            system.um.stop()
        assert errors == []
        assert system.consistent()
        for i in range(8):
            (entry,) = system.find_person(f"(definityExtension={4100 + i})")
            # The supplemental write landed on the right entry: the derived
            # phone number is present on the same person.
            assert entry.first("telephoneNumber") == f"+1 908 582 {4100 + i}"


class TestCompensationOrder:
    """Saga compensation with >= 3 bindings when a middle device rejects."""

    @pytest.fixture(params=[1, 4], ids=["serial", "parallel"])
    def system(self, request):
        system = fleet(
            3,
            abort_on_failure=True,
            undo_on_failure=True,
            fanout_workers=request.param,
        )
        yield system
        system.close()

    def test_reverse_binding_order(self, system):
        compensations = []
        original = system.um._compensate

        def spying(applied, trace=None):
            compensations.append([binding.name for binding, _, _ in applied])
            return original(applied, trace)

        system.um._compensate = spying
        system.pbxes["pbx-3"].fault_injector = explode
        system.connection().add(
            "cn=A B,o=Lucent",
            person_attrs("A B", "B", definityExtension="4100"),
        )
        # pbx-1 and pbx-2 applied before the middle device rejected; the
        # saga undoes them in reverse order, in both fan-out modes.
        assert compensations == [["pbx-1", "pbx-2"]]
        outcome = system.um.pipeline.last_outcome
        assert outcome.aborted and outcome.abort_index == 2
        assert outcome.compensated == ["pbx-2", "pbx-1"]
        assert system.um.statistics["compensated"] == 2
        # Every repository is back to its pre-update state.
        for name in ("pbx-1", "pbx-2", "pbx-3"):
            assert not system.pbxes[name].contains("4100")
        assert system.messaging.size() == 0

    def test_parallel_rollback_covers_devices_past_the_abort_point(self):
        system = fleet(3, fanout_workers=4)
        try:
            system.pbxes["pbx-1"].fault_injector = explode
            system.connection().add(
                "cn=A B,o=Lucent",
                person_attrs("A B", "B", definityExtension="4100"),
            )
            outcome = system.um.pipeline.last_outcome
            assert outcome.aborted and outcome.abort_index == 0
            # The concurrent workers committed optimistically; the rollback
            # pass undid them in reverse binding order.
            assert outcome.rolled_back == ["messaging", "pbx-3", "pbx-2"]
            assert (
                system.obs.registry.value("metacomm_um_rolled_back_total") == 3
            )
            for name in ("pbx-2", "pbx-3"):
                assert not system.pbxes[name].contains("4100")
            assert system.messaging.size() == 0
            # Rollback is not saga compensation: the counter stays at zero.
            assert system.um.statistics["compensated"] == 0
            assert len(system.error_log) == 1
        finally:
            system.close()


class TestSerialParallelEquivalence:
    """Byte-for-byte equivalent abort/saga semantics across modes."""

    SCENARIOS = {
        "abort": dict(abort_on_failure=True, undo_on_failure=False),
        "abort+undo": dict(abort_on_failure=True, undo_on_failure=True),
        "best-effort": dict(abort_on_failure=False, undo_on_failure=False),
        "best-effort+undo": dict(
            abort_on_failure=False, undo_on_failure=True
        ),
    }

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_failure_injection_matches(self, scenario):
        results = {}
        for workers in (1, 4):
            system = fleet(3, fanout_workers=workers, **self.SCENARIOS[scenario])
            try:
                compensations = []
                original = system.um._compensate

                def spying(applied, trace=None, _log=compensations, _o=original):
                    _log.append(
                        [binding.name for binding, _, _ in applied]
                    )
                    return _o(applied, trace)

                system.um._compensate = spying
                conn = system.connection()
                conn.add(
                    "cn=OK,o=Lucent",
                    person_attrs("OK", "OK", definityExtension="4200"),
                )
                system.pbxes["pbx-3"].fault_injector = explode
                conn.add(
                    "cn=A B,o=Lucent",
                    person_attrs("A B", "B", definityExtension="4100"),
                )
                results[workers] = {
                    "errors": error_records(system),
                    "compensations": compensations,
                    "devices": device_states(system),
                    "inconsistencies": sorted(system.inconsistencies()),
                    "stats": dict(system.um.statistics),
                }
            finally:
                system.close()
        assert results[1] == results[4], scenario

    def test_success_path_matches(self):
        results = {}
        for workers in (1, 4):
            system = fleet(3, fanout_workers=workers)
            try:
                conn = system.connection()
                conn.add(
                    "cn=A B,o=Lucent",
                    person_attrs("A B", "B", definityExtension="4100"),
                )
                conn.modify(
                    "cn=A B,o=Lucent",
                    [Modification.replace("definityRoom", "2B-110")],
                )
                entry = conn.get("cn=A B,o=Lucent")
                results[workers] = {
                    "entry": sorted(
                        (k, tuple(v))
                        for k, v in entry.attributes.to_dict().items()
                    ),
                    "devices": device_states(system),
                    "consistent": system.consistent(),
                }
            finally:
                system.close()
        assert results[1] == results[4]
        assert results[1]["consistent"]


class TestStagedOutcome:
    def test_stages_of_a_successful_sequence(self):
        system = fleet(2)
        system.connection().add(
            "cn=A B,o=Lucent",
            person_attrs("A B", "B", definityExtension="4100"),
        )
        outcome = system.um.pipeline.last_outcome
        assert [s.stage for s in outcome.stages] == [
            "enrich", "plan", "fanout", "merge", "supplemental",
        ]
        assert outcome.stage("plan").info["devices"] == 3
        assert not outcome.aborted
        assert outcome.supplemental_written
        assert len(outcome.outcomes) == 3
        assert all(o.applied for o in outcome.outcomes)

    def test_aborted_sequence_stops_before_merge(self):
        system = fleet(2)
        system.pbxes["pbx-1"].fault_injector = explode
        system.connection().add(
            "cn=A B,o=Lucent",
            person_attrs("A B", "B", definityExtension="4100"),
        )
        outcome = system.um.pipeline.last_outcome
        assert outcome.aborted
        assert [s.stage for s in outcome.stages] == ["enrich", "plan", "fanout"]
        assert not outcome.supplemental_written

    def test_stage_histogram_and_spans(self):
        system = fleet(2, fanout_workers=2)
        try:
            system.connection().add(
                "cn=A B,o=Lucent",
                person_attrs("A B", "B", definityExtension="4100"),
            )
            histogram = system.obs.registry.get("metacomm_um_stage_seconds")
            for stage in ("intake", "enrich", "plan", "fanout", "merge",
                          "supplemental"):
                assert histogram.labels(stage=stage).count >= 1, stage
            trace = system.last_trace("update")
            names = set(trace.span_names())
            assert {
                "stage.intake", "closure.enrich", "stage.plan",
                "stage.fanout", "stage.merge", "ldap.supplemental",
            } <= names
            (fanout_span,) = trace.find("stage.fanout")
            assert fanout_span.attributes["mode"] == "parallel"
            # The in-flight gauge is back to zero once the barrier passed.
            assert (
                system.obs.registry.value("metacomm_um_fanout_parallelism")
                == 0
            )
        finally:
            system.close()

    def test_fanout_workers_knob_is_live(self):
        system = fleet(2)
        try:
            assert not system.um.pipeline.parallel
            system.um.fanout_workers = 3
            assert system.um.pipeline.parallel
            system.connection().add(
                "cn=A B,o=Lucent",
                person_attrs("A B", "B", definityExtension="4100"),
            )
            assert system.consistent()
            with pytest.raises(ValueError):
                system.um.fanout_workers = 0
        finally:
            system.close()
