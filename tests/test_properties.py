"""Property-based tests over the core invariants.

* the DIT backend survives arbitrary operation sequences with its tree
  structure intact (hypothesis stateful testing);
* closure propagation is idempotent (a fixpoint really is a fixpoint);
* replication converges for random multi-master workloads;
* the full MetaComm pipeline keeps its consistency oracle green under
  random mixed update streams;
* mapping round trips hold for arbitrary clean device records.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.ldap import (
    DN,
    Entry,
    LdapConnection,
    LdapError,
    LdapServer,
    Modification,
    Rdn,
)
from repro.ldap.backend import Backend
from repro.ldap.replication import ReplicationEngine
from repro.lexpress import ClosureEngine
from repro.schemas import standard_mappings


# ---------------------------------------------------------------------------
# Stateful DIT testing
# ---------------------------------------------------------------------------

_NAMES = ["alpha", "beta", "gamma", "delta", "epsilon"]


class DitMachine(RuleBasedStateMachine):
    """Random adds/deletes/modifies/renames against a model dict."""

    def __init__(self):
        super().__init__()
        self.backend = Backend(["o=root"])
        self.backend.add(
            Entry("o=root", {"objectClass": "organization", "o": "root"})
        )
        # Model: normalized-dn-string -> attrs dict
        self.model: dict[str, dict] = {"o=root": {}}

    entries = Bundle("entries")

    @staticmethod
    def _norm(dn: DN) -> str:
        return str(dn).lower()

    @rule(target=entries, name=st.sampled_from(_NAMES),
          parent=st.none() | entries)
    def add_entry(self, name, parent):
        parent_dn = DN.parse(parent) if parent else DN.parse("o=root")
        dn = parent_dn.child(Rdn.single("cn", name))
        entry = Entry(dn, {"objectClass": "person", "cn": name, "sn": name})
        key = self._norm(dn)
        if key in self.model or str(parent_dn).lower() not in self.model:
            with pytest.raises(LdapError):
                self.backend.add(entry)
            return str(dn)
        self.backend.add(entry)
        self.model[key] = {"cn": name}
        return str(dn)

    @rule(dn=entries)
    def delete_entry(self, dn):
        key = dn.lower()
        has_children = any(
            k != key and k.endswith("," + key) for k in self.model
        )
        if key not in self.model or has_children:
            with pytest.raises(LdapError):
                self.backend.delete(DN.parse(dn))
            return
        self.backend.delete(DN.parse(dn))
        del self.model[key]

    @rule(dn=entries, value=st.text(alphabet="xyz", min_size=1, max_size=4))
    def modify_entry(self, dn, value):
        key = dn.lower()
        if key not in self.model:
            with pytest.raises(LdapError):
                self.backend.modify(
                    DN.parse(dn), [Modification.replace("description", value)]
                )
            return
        self.backend.modify(
            DN.parse(dn), [Modification.replace("description", value)]
        )
        self.model[key]["description"] = value

    @invariant()
    def model_matches_backend(self):
        actual = {
            str(e.dn).lower() for e in self.backend.all_entries()
        }
        assert actual == set(self.model)

    @invariant()
    def every_entry_has_its_parent(self):
        for entry in self.backend.all_entries():
            if entry.dn == DN.parse("o=root"):
                continue
            assert self.backend.contains(entry.dn.parent()), (
                f"orphan: {entry.dn}"
            )

    @invariant()
    def changelog_monotone(self):
        csns = [r.csn for r in self.backend.changelog]
        assert all(a < b for a, b in zip(csns, csns[1:]))


DitMachine.TestCase.settings = settings(
    max_examples=30,
    stateful_step_count=20,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
TestDitStateful = DitMachine.TestCase


# ---------------------------------------------------------------------------
# Closure idempotence
# ---------------------------------------------------------------------------

extension_values = st.from_regex(r"4[0-9]{3}", fullmatch=True)
name_values = st.tuples(
    st.sampled_from(["John", "Jill", "Pat"]), st.sampled_from(["Doe", "Lu"])
).map(lambda t: f"{t[1]}, {t[0]}")


@given(extension=extension_values, name=name_values)
@settings(max_examples=50, deadline=None)
def test_closure_is_idempotent(extension, name):
    """Propagating the fixpoint images again must change nothing."""
    engine = ClosureEngine(standard_mappings().values())
    first = engine.propagate(
        "pbx", {"Extension": extension, "Name": name}, changed=["Extension", "Name"]
    )
    second = engine.propagate(
        "ldap",
        first.image("ldap"),
        changed=[k for k in first.image("ldap")],
        base_images=first.images,
    )
    # Second pass derives no *different* values anywhere.
    for schema, image in second.images.items():
        for attr, values in image.items():
            prior = first.images.get(schema, {})
            prior_values = next(
                (v for k, v in prior.items() if k.lower() == attr.lower()), None
            )
            if prior_values is not None:
                assert values == prior_values, (schema, attr)


@given(extension=extension_values, name=name_values)
@settings(max_examples=50, deadline=None)
def test_mapping_round_trip_clean_records(extension, name):
    """pbx -> ldap -> pbx is the identity on clean station records."""
    mappings = standard_mappings()
    record = {"Extension": extension, "Name": name, "Room": "2B", "COS": "1"}
    ldap_image = mappings["pbx_to_ldap"].image(record)
    back = mappings["ldap_to_pbx"].image(ldap_image)
    assert back["Extension"] == [extension]
    assert back["Name"] == [name]
    assert back["Room"] == ["2B"]
    assert back["COS"] == ["1"]


# ---------------------------------------------------------------------------
# Replication convergence
# ---------------------------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),             # which master
        st.sampled_from(["add", "modify", "delete"]),
        st.sampled_from(["u1", "u2", "u3"]),
        st.text(alphabet="ab", min_size=1, max_size=3),    # value
    ),
    min_size=1,
    max_size=25,
)


@given(operations=ops)
@settings(max_examples=50, deadline=None)
def test_replication_converges_for_random_workloads(operations):
    servers = []
    for sid in ("a", "b"):
        server = LdapServer(["o=L"], server_id=sid)
        LdapConnection(server).add("o=L", {"objectClass": "organization", "o": "L"})
        servers.append(server)
    engine = ReplicationEngine()
    engine.connect_mesh(servers)
    engine.propagate()

    for which, op, user, value in operations:
        conn = LdapConnection(servers[which])
        dn = f"cn={user},o=L"
        try:
            if op == "add":
                conn.add(dn, {"objectClass": "person", "cn": user, "sn": value})
            elif op == "modify":
                conn.modify(dn, [Modification.replace("sn", value)])
            else:
                conn.delete(dn)
        except LdapError:
            pass  # op invalid in current state; fine
        # Interleave propagation at random-ish points: after every op.
        engine.propagate()

    engine.propagate()
    assert engine.converged(), [
        (str(e.dn), e.attributes.to_dict())
        for s in servers
        for e in s.backend.all_entries()
    ]


# ---------------------------------------------------------------------------
# Whole-system consistency under random streams
# ---------------------------------------------------------------------------

stream_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.floats(min_value=0.0, max_value=1.0),     # ddu fraction
    st.floats(min_value=0.0, max_value=0.9),     # conflict probability
)


@given(params=stream_params)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_metacomm_consistent_under_random_streams(params):
    seed, ddu_fraction, conflict = params
    from repro.core import MetaComm, MetaCommConfig
    from repro.workloads import (
        apply_stream,
        make_population,
        make_stream,
        populate_via_ldap,
    )

    system = MetaComm(MetaCommConfig())
    people = make_population(5, seed=seed % 997)
    populate_via_ldap(system, people)
    events = make_stream(
        people, 12, ddu_fraction=ddu_fraction,
        conflict_probability=conflict, seed=seed,
    )
    apply_stream(system, events)
    assert system.inconsistencies() == []
