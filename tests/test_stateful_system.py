"""Stateful whole-system testing: random operation sequences against a
full MetaComm deployment, with global consistency as the invariant.

This is the strongest oracle we have for the paper's headline claim: after
*any* interleaving of WBA-style LDAP updates, craft-terminal DDUs, user
deletions and resynchronizations, every repository agrees.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import MetaComm, MetaCommConfig
from repro.ldap import LdapError, Modification
from repro.schemas import PERSON_CLASSES

_EXTENSIONS = [str(4100 + i) for i in range(4)]
_ROOMS = ["1A", "2B", "3C"]


class MetaCommMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        # The lock witness records every acquisition-order pair; the
        # invariant below turns any reversal seen during a random
        # operation sequence into a counterexample hypothesis can shrink.
        self.system = MetaComm(MetaCommConfig(lock_witness=True))
        self.conn = self.system.connection()
        self.terminal = self.system.terminal()
        self.live: set[str] = set()  # extensions with a person entry

    def _dn(self, ext: str) -> str:
        return f"cn=User {ext},o=Lucent"

    @rule(ext=st.sampled_from(_EXTENSIONS))
    def hire_via_ldap(self, ext):
        if ext in self.live:
            return
        if self.conn.exists(self._dn(ext)):
            # The person survived an earlier station removal; re-provision.
            self.conn.modify(
                self._dn(ext),
                [Modification.replace("definityExtension", ext)],
            )
        else:
            self.conn.add(
                self._dn(ext),
                {
                    "objectClass": list(PERSON_CLASSES),
                    "cn": f"User {ext}",
                    "sn": ext,
                    "definityExtension": ext,
                },
            )
        self.live.add(ext)

    @rule(ext=st.sampled_from(_EXTENSIONS))
    def hire_via_terminal(self, ext):
        if ext in self.live:
            return
        response = self.terminal.execute(
            f'add station {ext} name "{ext}, User"'
        )
        assert response.ok, response.text
        self.live.add(ext)

    @rule(ext=st.sampled_from(_EXTENSIONS), room=st.sampled_from(_ROOMS))
    def move_room_via_ldap(self, ext, room):
        if ext not in self.live:
            return
        hits = self.system.find_person(f"(definityExtension={ext})")
        if not hits:
            return
        self.conn.modify(
            hits[0].dn, [Modification.replace("definityRoom", room)]
        )

    @rule(ext=st.sampled_from(_EXTENSIONS), room=st.sampled_from(_ROOMS))
    def move_room_via_terminal(self, ext, room):
        if ext not in self.live:
            return
        self.terminal.execute(f"change station {ext} room {room}")

    @rule(ext=st.sampled_from(_EXTENSIONS))
    def fire_via_ldap(self, ext):
        if ext not in self.live:
            return
        hits = self.system.find_person(f"(definityExtension={ext})")
        if not hits:
            return
        try:
            self.conn.delete(hits[0].dn)
        except LdapError:
            return
        self.live.discard(ext)

    @rule(ext=st.sampled_from(_EXTENSIONS))
    def remove_station_via_terminal(self, ext):
        if ext not in self.live:
            return
        self.terminal.execute(f"remove station {ext}")
        # The person entry survives with device data stripped; the
        # extension no longer counts as live device data.
        self.live.discard(ext)

    @rule()
    def resynchronize(self):
        report = self.system.sync.synchronize("definity")
        assert not report.errors, report.errors

    @invariant()
    def globally_consistent(self):
        problems = self.system.inconsistencies()
        assert problems == [], problems

    @invariant()
    def no_locks_leaked(self):
        assert self.system.gateway.locks.held_count() == 0

    @invariant()
    def no_errors_logged(self):
        assert len(self.system.error_log) == 0

    @invariant()
    def no_lock_order_reversals(self):
        assert self.system.lock_witness.violations() == []


MetaCommMachine.TestCase.settings = settings(
    max_examples=20,
    stateful_step_count=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
TestMetaCommStateful = MetaCommMachine.TestCase
