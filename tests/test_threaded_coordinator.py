"""Tests for the threaded coordinator mode.

Section 4.4 describes the UM as having a *main thread* iterating the
global queue.  In threaded mode LTAP's trigger hands the queued descriptor
to the coordinator thread and blocks until it signals completion, so the
entry-lock semantics are identical to synchronous mode.
"""

import threading

import pytest

from repro.core import MetaComm, MetaCommConfig
from repro.ldap import Modification
from repro.schemas import PERSON_CLASSES


def person_attrs(cn, sn, **extra):
    attrs = {"objectClass": list(PERSON_CLASSES), "cn": cn, "sn": sn}
    attrs.update(extra)
    return attrs


@pytest.fixture
def system():
    # lock_witness=True wraps every subsystem lock in an order-recording
    # proxy (repro.obs.lockwitness); the teardown assertion makes any
    # acquisition-order reversal observed during a threaded test fail
    # that test rather than pass silently.
    system = MetaComm(
        MetaCommConfig(organizations=("Marketing",), lock_witness=True)
    )
    system.um.start()
    yield system
    system.um.stop()
    assert system.lock_witness.violations() == []


class TestThreadedMode:
    def test_start_stop_idempotent(self, system):
        assert system.um.threaded
        system.um.start()  # second start is a no-op
        assert system.um.threaded
        system.um.stop()
        assert not system.um.threaded
        system.um.stop()  # second stop is a no-op
        system.um.start()  # fixture teardown needs a thread to stop

    def test_ldap_path(self, system):
        conn = system.connection()
        conn.add(
            "cn=A B,o=Marketing,o=Lucent",
            person_attrs("A B", "B", definityExtension="4100"),
        )
        assert system.pbx().contains("4100")
        assert system.messaging.contains("+1 908 582 4100")
        assert system.consistent()

    def test_ddu_path(self, system):
        system.terminal().execute('add station 4200 name "Smith, Pat"')
        (entry,) = system.find_person("(definityExtension=4200)")
        assert entry.first("cn") == "Pat Smith"
        assert system.consistent()

    def test_coordinator_failure_surfaces_to_caller(self, system):

        # A poisoned processing step propagates back to the blocked client.
        def explode(item, session):
            raise RuntimeError("coordinator exploded")

        system.um._process = explode
        with pytest.raises(RuntimeError, match="coordinator exploded"):
            system.connection().add(
                "cn=X,o=Marketing,o=Lucent",
                person_attrs("X", "X", definityExtension="4300"),
            )

    def test_coordinator_failure_keeps_exception_type(self, system):
        # The original exception object crosses the thread boundary, not a
        # wrapped copy — callers can catch the specific type.
        marker = ValueError("bad extension digits")

        def explode(item, session):
            raise marker

        system.um._process = explode
        with pytest.raises(ValueError) as excinfo:
            system.connection().add(
                "cn=Y,o=Marketing,o=Lucent",
                person_attrs("Y", "Y", definityExtension="4301"),
            )
        assert excinfo.value is marker

    def test_coordinator_timeout_surfaces_to_caller(self, system):
        import time

        # A wedged sequence must not hang the blocked trigger forever:
        # after coordinator_timeout the client gets a RuntimeError.
        system.um.coordinator_timeout = 0.05

        def wedged(item, session):
            time.sleep(0.5)

        system.um._process = wedged
        with pytest.raises(RuntimeError, match="did not complete"):
            system.connection().add(
                "cn=Z,o=Marketing,o=Lucent",
                person_attrs("Z", "Z", definityExtension="4302"),
            )

    def test_concurrent_clients(self, system):
        errors = []

        def client(i):
            try:
                conn = system.connection()
                conn.add(
                    f"cn=U{i},o=Marketing,o=Lucent",
                    person_attrs(f"U{i}", "U", definityExtension=str(4100 + i)),
                )
                conn.modify(
                    f"cn=U{i},o=Marketing,o=Lucent",
                    [Modification.replace("definityRoom", f"R{i}")],
                )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert system.pbx().size() == 6
        assert system.consistent()

    def test_locks_held_while_coordinator_works(self, system):
        observed = []
        original_process = system.um._process

        def spying(item, session):
            observed.append(system.gateway.locks.held_count() > 0)
            return original_process(item, session)

        system.um._process = spying
        system.connection().add(
            "cn=A B,o=Marketing,o=Lucent",
            person_attrs("A B", "B", definityExtension="4100"),
        )
        assert observed and all(observed)

    def test_sync_works_in_threaded_mode(self, system):
        system.pbx()._records["4500"] = {"Extension": "4500", "Name": "Lone, Sam"}
        report = system.sync.synchronize("definity")
        assert report.added == 1
        assert system.consistent()


class TestShardedContention:
    """The sharded queue's claim/wait_turn/finish contract under arbitrary
    thread interleavings: no double-claims, no skipped serials, and a
    deterministic barrier drain (docs/CONCURRENCY.md)."""

    @staticmethod
    def _queue(lanes=2):
        from repro.core import ShardedUpdateQueue
        from tests.test_lane_routing import ScriptedPlan

        return ShardedUpdateQueue(ScriptedPlan(), lanes=lanes)

    @staticmethod
    def _descriptor(key):
        from repro.lexpress.descriptor import UpdateDescriptor, UpdateOp

        return UpdateDescriptor(
            op=UpdateOp.ADD, source="ldap", key=key, new={"cn": [key]}
        )

    def test_one_lane_never_runs_two_items_at_once(self):
        import time

        queue = self._queue(lanes=2)
        lock = threading.Lock()
        active: dict[str, int] = {}
        overlaps = []
        processed: dict[str, list[int]] = {}
        errors = []

        def worker(i):
            try:
                for j in range(8):
                    # All threads fight over two lane keys: heavy
                    # same-lane contention with cross-lane noise.
                    item = queue.claim(self._descriptor(f"k{i % 2}"))
                    assert queue.wait_turn(item, timeout=5.0)
                    with lock:
                        active[item.lane] = active.get(item.lane, 0) + 1
                        if active[item.lane] > 1:
                            overlaps.append(item.serial)
                        processed.setdefault(item.lane, []).append(item.serial)
                    time.sleep(0.001)  # widen the race window
                    with lock:
                        active[item.lane] -= 1
                    queue.finish(item)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert overlaps == []
        # Every claimed serial ran exactly once, in FIFO order per lane.
        all_serials = [s for lane in processed.values() for s in lane]
        assert sorted(all_serials) == list(range(1, 6 * 8 + 1))
        for serials in processed.values():
            assert serials == sorted(serials)

    def test_barrier_drain_is_deterministic(self):
        queue = self._queue(lanes=3)
        lock = threading.Lock()
        events = []  # (phase, serial, is_serial_lane), in wall order
        errors = []

        def run(item):
            from repro.core.queue import SERIAL_LANE

            try:
                assert queue.wait_turn(item, timeout=5.0)
                with lock:
                    events.append(
                        ("start", item.serial, item.lane == SERIAL_LANE)
                    )
                with lock:
                    events.append(
                        ("end", item.serial, item.lane == SERIAL_LANE)
                    )
                queue.finish(item)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
                queue.finish(item)

        # Interleave lane traffic with serial items: l l S l l S l.
        keys = ["a", "b", "serial:unclaimed", "c", "a", "serial:ddu", "b"]
        items = [self._descriptor(k) for k in keys]
        claimed = [queue.claim(d) for d in items]
        threads = [
            threading.Thread(target=run, args=(item,)) for item in claimed
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

        serial_serials = [
            c.serial for c, k in zip(claimed, keys) if k.startswith("serial:")
        ]
        done_before: dict[int, set[int]] = {}
        finished: set[int] = set()
        for phase, serial, _is_serial in events:
            if phase == "start":
                done_before[serial] = set(finished)
            else:
                finished.add(serial)
        for s in serial_serials:
            # Everything enqueued before the serial item finished first...
            assert {c.serial for c in claimed if c.serial < s} <= done_before[s]
            # ...and nothing enqueued after it started until it was done.
            for later in (c.serial for c in claimed if c.serial > s):
                assert s in done_before[later]


class TestShardedThreadedMode:
    """The coordinator pool behaves like the single coordinator for the
    client-facing contract: failures and timeouts still surface."""

    @pytest.fixture
    def system(self):
        from repro.core import PbxConfig

        system = MetaComm(
            MetaCommConfig(
                pbxes=[PbxConfig(f"pbx-{i}", (str(41 + i),)) for i in range(2)],
                coordinator_lanes=2,
            )
        )
        system.um.start()
        yield system
        system.um.stop()

    def test_start_stop(self, system):
        assert system.um.threaded and system.um.sharded
        system.um.stop()
        assert not system.um.threaded
        system.um.start()

    def test_failure_surfaces_to_the_blocked_client(self, system):
        marker = ValueError("bad extension digits")

        def explode(item, session):
            raise marker

        system.um._process = explode
        with pytest.raises(ValueError) as excinfo:
            system.connection().add(
                "cn=X,o=Lucent",
                person_attrs("X", "X", definityExtension="4100"),
            )
        assert excinfo.value is marker

    def test_timeout_surfaces_to_the_blocked_client(self, system):
        import time

        system.um.coordinator_timeout = 0.05

        def wedged(item, session):
            time.sleep(0.5)

        system.um._process = wedged
        with pytest.raises(RuntimeError, match="did not complete"):
            system.connection().add(
                "cn=Z,o=Lucent",
                person_attrs("Z", "Z", definityExtension="4200"),
            )

    def test_locks_held_while_a_lane_works(self, system):
        observed = []
        original_process = system.um._process

        def spying(item, session):
            observed.append(system.gateway.locks.held_count() > 0)
            return original_process(item, session)

        system.um._process = spying
        system.connection().add(
            "cn=A B,o=Lucent",
            person_attrs("A B", "B", definityExtension="4100"),
        )
        assert observed and all(observed)
