"""Tests for the threaded coordinator mode.

Section 4.4 describes the UM as having a *main thread* iterating the
global queue.  In threaded mode LTAP's trigger hands the queued descriptor
to the coordinator thread and blocks until it signals completion, so the
entry-lock semantics are identical to synchronous mode.
"""

import threading

import pytest

from repro.core import MetaComm, MetaCommConfig
from repro.ldap import Modification
from repro.schemas import PERSON_CLASSES


def person_attrs(cn, sn, **extra):
    attrs = {"objectClass": list(PERSON_CLASSES), "cn": cn, "sn": sn}
    attrs.update(extra)
    return attrs


@pytest.fixture
def system():
    system = MetaComm(MetaCommConfig(organizations=("Marketing",)))
    system.um.start()
    yield system
    system.um.stop()


class TestThreadedMode:
    def test_start_stop_idempotent(self, system):
        assert system.um.threaded
        system.um.start()  # second start is a no-op
        assert system.um.threaded
        system.um.stop()
        assert not system.um.threaded
        system.um.stop()  # second stop is a no-op
        system.um.start()  # fixture teardown needs a thread to stop

    def test_ldap_path(self, system):
        conn = system.connection()
        conn.add(
            "cn=A B,o=Marketing,o=Lucent",
            person_attrs("A B", "B", definityExtension="4100"),
        )
        assert system.pbx().contains("4100")
        assert system.messaging.contains("+1 908 582 4100")
        assert system.consistent()

    def test_ddu_path(self, system):
        system.terminal().execute('add station 4200 name "Smith, Pat"')
        (entry,) = system.find_person("(definityExtension=4200)")
        assert entry.first("cn") == "Pat Smith"
        assert system.consistent()

    def test_coordinator_failure_surfaces_to_caller(self, system):

        # A poisoned processing step propagates back to the blocked client.
        def explode(item, session):
            raise RuntimeError("coordinator exploded")

        system.um._process = explode
        with pytest.raises(RuntimeError, match="coordinator exploded"):
            system.connection().add(
                "cn=X,o=Marketing,o=Lucent",
                person_attrs("X", "X", definityExtension="4300"),
            )

    def test_coordinator_failure_keeps_exception_type(self, system):
        # The original exception object crosses the thread boundary, not a
        # wrapped copy — callers can catch the specific type.
        marker = ValueError("bad extension digits")

        def explode(item, session):
            raise marker

        system.um._process = explode
        with pytest.raises(ValueError) as excinfo:
            system.connection().add(
                "cn=Y,o=Marketing,o=Lucent",
                person_attrs("Y", "Y", definityExtension="4301"),
            )
        assert excinfo.value is marker

    def test_coordinator_timeout_surfaces_to_caller(self, system):
        import time

        # A wedged sequence must not hang the blocked trigger forever:
        # after coordinator_timeout the client gets a RuntimeError.
        system.um.coordinator_timeout = 0.05

        def wedged(item, session):
            time.sleep(0.5)

        system.um._process = wedged
        with pytest.raises(RuntimeError, match="did not complete"):
            system.connection().add(
                "cn=Z,o=Marketing,o=Lucent",
                person_attrs("Z", "Z", definityExtension="4302"),
            )

    def test_concurrent_clients(self, system):
        errors = []

        def client(i):
            try:
                conn = system.connection()
                conn.add(
                    f"cn=U{i},o=Marketing,o=Lucent",
                    person_attrs(f"U{i}", "U", definityExtension=str(4100 + i)),
                )
                conn.modify(
                    f"cn=U{i},o=Marketing,o=Lucent",
                    [Modification.replace("definityRoom", f"R{i}")],
                )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert system.pbx().size() == 6
        assert system.consistent()

    def test_locks_held_while_coordinator_works(self, system):
        observed = []
        original_process = system.um._process

        def spying(item, session):
            observed.append(system.gateway.locks.held_count() > 0)
            return original_process(item, session)

        system.um._process = spying
        system.connection().add(
            "cn=A B,o=Marketing,o=Lucent",
            person_attrs("A B", "B", definityExtension="4100"),
        )
        assert observed and all(observed)

    def test_sync_works_in_threaded_mode(self, system):
        system.pbx()._records["4500"] = {"Extension": "4500", "Name": "Lone, Sam"}
        report = system.sync.synchronize("definity")
        assert report.added == 1
        assert system.consistent()
