"""Tests for the Web-Based Administration layer and the hoteling app."""

import pytest

from repro.core import MetaComm, MetaCommConfig
from repro.ldap import LdapError
from repro.wba import FormValidationError, WebAdmin, validate


@pytest.fixture
def system():
    return MetaComm(MetaCommConfig(organizations=("Marketing", "R&D")))


@pytest.fixture
def wba(system):
    return WebAdmin(system)


class TestFormValidation:
    def test_valid_submission(self):
        cleaned = validate(
            {"full_name": "John Doe", "surname": "Doe", "extension": "4100"}
        )
        assert cleaned["extension"] == "4100"

    def test_missing_mandatory(self):
        with pytest.raises(FormValidationError) as err:
            validate({"full_name": "X"})
        assert "surname" in err.value.problems

    def test_bad_extension(self):
        with pytest.raises(FormValidationError) as err:
            validate(
                {"full_name": "X", "surname": "Y", "extension": "41x"},
            )
        assert "extension" in err.value.problems

    def test_bad_phone(self):
        with pytest.raises(FormValidationError):
            validate({"full_name": "X", "surname": "Y", "phone": "abc"})

    def test_unknown_field_rejected(self):
        with pytest.raises(FormValidationError):
            validate({"full_name": "X", "surname": "Y", "shoe_size": "42"})

    def test_read_only_field_rejected(self):
        with pytest.raises(FormValidationError):
            validate({"full_name": "X", "surname": "Y", "mailbox": "MB-1"})

    def test_whitespace_trimmed(self):
        cleaned = validate({"full_name": "  X ", "surname": "Y"})
        assert cleaned["full_name"] == "X"


class TestUserLifecycle:
    def test_create_provisions_devices(self, system, wba):
        dn = wba.create_user(
            "Marketing", full_name="John Doe", surname="Doe",
            extension="4100", room="2B-110",
        )
        assert dn == "cn=John Doe,o=Marketing,o=Lucent"
        assert system.pbx().station("4100")["Room"] == "2B-110"
        assert system.messaging.contains("+1 908 582 4100")

    def test_form_round_trip(self, system, wba):
        dn = wba.create_user(
            "Marketing", full_name="John Doe", surname="Doe", extension="4100"
        )
        form = wba.user_form(dn)
        assert form["full_name"] == "John Doe"
        assert form["extension"] == "4100"
        assert form["mailbox"].startswith("MB-")
        assert form["updated_by"] == "ldap"

    def test_update_user_changes_device(self, system, wba):
        dn = wba.create_user(
            "Marketing", full_name="John Doe", surname="Doe", extension="4100"
        )
        wba.update_user(dn, room="9Z-001", cos="3")
        station = system.pbx().station("4100")
        assert station["Room"] == "9Z-001"
        assert station["COS"] == "3"

    def test_update_clearing_field(self, system, wba):
        dn = wba.create_user(
            "Marketing", full_name="John Doe", surname="Doe",
            extension="4100", room="2B",
        )
        wba.update_user(dn, room="")
        assert "Room" not in system.pbx().station("4100")

    def test_rename_via_form(self, system, wba):
        dn = wba.create_user(
            "Marketing", full_name="John Doe", surname="Doe", extension="4100"
        )
        wba.update_user(dn, full_name="Johnny Doe")
        assert wba.connection.exists("cn=Johnny Doe,o=Marketing,o=Lucent")
        assert system.pbx().station("4100")["Name"] == "Doe, Johnny"

    def test_delete_user_cleans_devices(self, system, wba):
        dn = wba.create_user(
            "Marketing", full_name="John Doe", surname="Doe", extension="4100"
        )
        wba.delete_user(dn)
        assert not system.pbx().contains("4100")
        assert system.messaging.size() == 0

    def test_invalid_form_never_reaches_devices(self, system, wba):
        with pytest.raises(FormValidationError):
            wba.create_user("Marketing", full_name="X", surname="Y", extension="bad")
        assert system.pbx().size() == 0

    def test_list_users(self, wba):
        wba.create_user("Marketing", full_name="B B", surname="B", extension="4101")
        wba.create_user("R&D", full_name="A A", surname="A", extension="4100")
        rows = wba.list_users()
        assert [r.name for r in rows] == ["A A", "B B"]
        assert rows[0].extension == "4100"

    def test_renderers(self, system, wba):
        dn = wba.create_user(
            "Marketing", full_name="John Doe", surname="Doe", extension="4100"
        )
        listing = wba.render_user_list()
        assert "John Doe" in listing and "4100" in listing
        form = wba.render_user_form(dn)
        assert "PBX extension" in form and "(read-only)" in form


class TestHoteling:
    """Section 4.5: redirecting an extension to another room as needed."""

    def test_checkin_moves_room_and_port(self, system, wba):
        dn = wba.create_user(
            "Marketing", full_name="John Doe", surname="Doe",
            extension="4100", room="2B-110",
        )
        wba.hotel_checkin(dn, room="6F-002", port="02B0101")
        station = system.pbx().station("4100")
        assert station["Room"] == "6F-002"
        assert station["Port"] == "02B0101"

    def test_checkout_restores_home_room(self, system, wba):
        dn = wba.create_user(
            "Marketing", full_name="John Doe", surname="Doe",
            extension="4100", room="2B-110",
        )
        wba.hotel_checkin(dn, room="6F-002", port="02B0101")
        wba.hotel_checkout(dn)
        station = system.pbx().station("4100")
        assert station["Room"] == "2B-110"
        assert "Port" not in station

    def test_checkin_without_extension_rejected(self, system, wba):
        dn = wba.create_user("Marketing", full_name="NoPhone", surname="P")
        with pytest.raises(LdapError):
            wba.hotel_checkin(dn, room="6F-002")

    def test_visiting_desk_visible_to_device_admins(self, system, wba):
        """The same data is visible on the legacy terminal — the point of
        the meta-directory."""
        dn = wba.create_user(
            "Marketing", full_name="John Doe", surname="Doe",
            extension="4100", room="2B-110",
        )
        wba.hotel_checkin(dn, room="6F-002")
        response = system.terminal().execute("display station 4100")
        assert "6F-002" in response.text
