"""Tests for the synthetic workload generators."""


from repro.core import MetaComm, MetaCommConfig
from repro.workloads import (
    NameGenerator,
    UpdatePath,
    apply_stream,
    make_population,
    make_stream,
    populate_via_ldap,
    populate_via_pbx,
)


class TestNameGenerator:
    def test_deterministic_with_seed(self):
        a = [NameGenerator(42).full_name() for _ in range(10)]
        b = [NameGenerator(42).full_name() for _ in range(10)]
        # Two separate generators with the same seed produce the same names.
        assert [NameGenerator(42).full_name() for _ in range(1)] == [
            NameGenerator(42).full_name() for _ in range(1)
        ]
        gen1, gen2 = NameGenerator(42), NameGenerator(42)
        assert [gen1.full_name() for _ in range(10)] == [
            gen2.full_name() for _ in range(10)
        ]

    def test_names_unique(self):
        gen = NameGenerator(1)
        names = [gen.full_name() for _ in range(300)]
        assert len(set(names)) == 300

    def test_pbx_name_mostly_clean(self):
        gen = NameGenerator(3)
        clean = sum(
             1 for _ in range(200)
            if ", " in gen.pbx_name("John", "Doe")
        )
        assert clean > 120  # mostly the Definity convention, some dirt


class TestPopulation:
    def test_population_shape(self):
        people = make_population(50, seed=1)
        assert len(people) == 50
        assert len({p.extension for p in people}) == 50
        assert all(p.extension.startswith("4") for p in people)
        assert all(p.cn == f"{p.given} {p.surname}" for p in people)

    def test_population_deterministic(self):
        assert make_population(20, seed=9) == make_population(20, seed=9)

    def test_populate_via_ldap_provisions_everything(self):
        system = MetaComm(MetaCommConfig())
        people = make_population(10)
        assert populate_via_ldap(system, people) == 10
        assert system.pbx().size() == 10
        assert system.messaging.size() == 10
        assert system.consistent()

    def test_populate_via_pbx_is_silent(self):
        system = MetaComm(MetaCommConfig())
        people = make_population(10)
        assert populate_via_pbx(system, people) == 10
        assert system.pbx().size() == 10
        assert system.server.size() <= 2  # suffix + error container only
        # Until a sync runs, the directory knows nothing.
        report = system.sync.synchronize("definity")
        assert report.added == 10
        assert system.consistent()


class TestUpdateStream:
    def test_stream_shape(self):
        people = make_population(10)
        events = make_stream(people, 100, ddu_fraction=0.3, seed=5)
        assert len(events) == 100
        ddus = sum(1 for e in events if e.path is UpdatePath.DDU)
        assert 10 < ddus < 60

    def test_conflict_probability_repeats_targets(self):
        people = make_population(10)
        events = make_stream(people, 200, conflict_probability=0.9, seed=5)
        repeats = sum(
            1
            for prev, cur in zip(events, events[1:])
            if prev.person is cur.person
        )
        assert repeats > 120

    def test_zero_conflicts_rarely_repeat(self):
        people = make_population(50)
        events = make_stream(people, 200, conflict_probability=0.0, seed=5)
        repeats = sum(
            1
            for prev, cur in zip(events, events[1:])
            if prev.person is cur.person
        )
        assert repeats < 20

    def test_apply_stream_keeps_system_consistent(self):
        system = MetaComm(MetaCommConfig())
        people = make_population(10)
        populate_via_ldap(system, people)
        events = make_stream(people, 50, ddu_fraction=0.4, seed=11)
        assert apply_stream(system, events) == 50
        assert system.consistent()

    def test_stream_deterministic(self):
        people = make_population(5)
        assert make_stream(people, 30, seed=2) == make_stream(people, 30, seed=2)
